//! no-hot-alloc passing fixture: claimed at `crates/tensor/src/graph.rs`.
//! The hot function uses arena-backed storage and stack scratch; fresh heap
//! allocations only appear in a cold (non-hot-listed) function.

impl Graph {
    fn propagate(&mut self, i: usize) {
        let acc = Storage::zeroed(8);
        let scratch = Storage::uninit(8);
        shape::with_dims(6, |dims| {
            dims[0] = i;
        });
        drop((acc, scratch));
    }

    fn build_report(&self) -> Vec<f64> {
        // Cold path: allocation here is fine.
        let mut rows = Vec::with_capacity(self.nodes.len());
        rows.extend(vec![0.0; 4]);
        rows
    }
}
