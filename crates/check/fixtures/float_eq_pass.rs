//! Fixture: tolerance-based comparisons and integer equality are fine.

pub fn ok(psi: f64, n: usize, tol: f64) -> bool {
    let near = (psi - 1.0).abs() <= tol;
    let int_eq = n == 0;
    let ord = psi <= 0.5 && psi >= 0.1;
    near && int_eq && ord
}
