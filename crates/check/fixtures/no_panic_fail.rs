//! Fixture: panics in library code of a panic-free crate.

pub fn lookup(xs: &[f64]) -> f64 {
    let first = xs.first().unwrap();
    let last = xs.last().expect("non-empty");
    if xs.len() > 3 {
        panic!("too many");
    }
    if xs.is_empty() {
        todo!()
    }
    first + last
}
