//! Fixture: HashMap iteration order leaking into serialized output.

use std::collections::HashMap;

pub fn render() -> String {
    let reg: HashMap<String, u64> = HashMap::new();
    let mut out = String::new();
    for (k, v) in reg.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
