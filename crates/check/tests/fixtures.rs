//! Fixture-driven rule tests: every rule has one passing and one violating
//! fixture under `crates/check/fixtures/`, scanned exactly as the engine
//! scans workspace sources (the claimed path/crate decide rule scoping).

use ppn_check::{lint_file, Role, SourceFile};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Lints `fixtures/<name>` as if it lived at `claimed_path` inside
/// `crate_name`, returning the sorted rule ids of the diagnostics.
fn lint_fixture(name: &str, claimed_path: &str, crate_name: &str) -> Vec<&'static str> {
    let src = fixture(name);
    let file = SourceFile::scan(claimed_path, crate_name, Role::Lib, &src);
    let mut rules: Vec<&'static str> = lint_file(&file).into_iter().map(|d| d.rule).collect();
    rules.sort();
    rules
}

#[test]
fn no_panic_fixtures() {
    assert_eq!(
        lint_fixture("no_panic_fail.rs", "crates/baselines/src/x.rs", "ppn-baselines"),
        vec!["no-panic"; 4],
    );
    assert_eq!(
        lint_fixture("no_panic_pass.rs", "crates/baselines/src/x.rs", "ppn-baselines"),
        Vec::<&str>::new(),
    );
}

#[test]
fn float_eq_fixtures() {
    assert_eq!(
        lint_fixture("float_eq_fail.rs", "crates/baselines/src/x.rs", "ppn-baselines"),
        vec!["float-eq"; 2],
    );
    assert_eq!(
        lint_fixture("float_eq_pass.rs", "crates/baselines/src/x.rs", "ppn-baselines"),
        Vec::<&str>::new(),
    );
    // The shared helper module itself is whitelisted by file name.
    assert_eq!(
        lint_fixture("float_eq_fail.rs", "crates/tensor/src/approx.rs", "ppn-tensor"),
        Vec::<&str>::new(),
    );
}

#[test]
fn hash_iter_fixtures() {
    assert_eq!(
        lint_fixture("hash_iter_fail.rs", "crates/bench/src/x.rs", "ppn-bench"),
        vec!["hash-iter"],
    );
    assert_eq!(
        lint_fixture("hash_iter_pass.rs", "crates/bench/src/x.rs", "ppn-bench"),
        Vec::<&str>::new(),
    );
}

#[test]
fn lint_header_fixtures() {
    assert_eq!(
        lint_fixture("lint_header_fail.rs", "crates/fixture/src/lib.rs", "ppn-fixture"),
        vec!["lint-header"; 2],
    );
    assert_eq!(
        lint_fixture("lint_header_pass.rs", "crates/fixture/src/lib.rs", "ppn-fixture"),
        Vec::<&str>::new(),
    );
    // Non-root files don't need headers.
    assert_eq!(
        lint_fixture("lint_header_fail.rs", "crates/fixture/src/other.rs", "ppn-fixture"),
        Vec::<&str>::new(),
    );
}

#[test]
fn pub_doc_fixtures() {
    assert_eq!(
        lint_fixture("pub_doc_fail.rs", "crates/core/src/x.rs", "ppn-core"),
        vec!["pub-doc"; 3],
    );
    assert_eq!(
        lint_fixture("pub_doc_pass.rs", "crates/core/src/x.rs", "ppn-core"),
        Vec::<&str>::new(),
    );
    // Out-of-scope crates are exempt from pub-doc.
    assert_eq!(
        lint_fixture("pub_doc_fail.rs", "crates/bench/src/x.rs", "ppn-bench"),
        Vec::<&str>::new(),
    );
    // ppn-obs and ppn-trace joined the pub-doc scope with the tracing work.
    assert_eq!(
        lint_fixture("pub_doc_fail.rs", "crates/trace/src/x.rs", "ppn-trace"),
        vec!["pub-doc"; 3],
    );
}

#[test]
fn contract_fixtures() {
    assert_eq!(
        lint_fixture("contract_fail.rs", "crates/baselines/src/x.rs", "ppn-baselines"),
        vec!["contract"; 4],
    );
    assert_eq!(
        lint_fixture("contract_pass.rs", "crates/baselines/src/x.rs", "ppn-baselines"),
        Vec::<&str>::new(),
    );
}

#[test]
fn no_thread_fixtures() {
    assert_eq!(
        lint_fixture("no_thread_fail.rs", "crates/baselines/src/x.rs", "ppn-baselines"),
        vec!["no-thread"; 3],
    );
    assert_eq!(
        lint_fixture("no_thread_pass.rs", "crates/bench/src/x.rs", "ppn-bench"),
        Vec::<&str>::new(),
    );
    // The pool module itself is a sanctioned spawner.
    assert_eq!(
        lint_fixture("no_thread_fail.rs", "crates/tensor/src/par.rs", "ppn-tensor"),
        Vec::<&str>::new(),
    );
    // So is the ppn-serve listener/accept loop (other rules — pub-doc —
    // still apply there, so compare the no-thread findings only)…
    let server = lint_fixture("no_thread_fail.rs", "crates/serve/src/server.rs", "ppn-serve");
    assert!(!server.contains(&"no-thread"), "listener must be exempt: {server:?}");
    // …but no other ppn-serve module gets the exemption.
    let batcher = lint_fixture("no_thread_fail.rs", "crates/serve/src/batcher.rs", "ppn-serve");
    assert_eq!(batcher.iter().filter(|r| **r == "no-thread").count(), 3, "{batcher:?}");
}

#[test]
fn allow_syntax_fixtures() {
    // A reasonless allow and an unknown-rule allow are diagnostics, and the
    // reasonless one does NOT suppress the finding it points at.
    assert_eq!(
        lint_fixture("allow_syntax_fail.rs", "crates/baselines/src/x.rs", "ppn-baselines"),
        vec!["allow-syntax", "allow-syntax", "no-panic"],
    );
    assert_eq!(
        lint_fixture("allow_syntax_pass.rs", "crates/baselines/src/x.rs", "ppn-baselines"),
        Vec::<&str>::new(),
    );
}

#[test]
fn shim_crates_are_exempt_by_manifest_name() {
    // Shim sources freely use unwrap/panic; linting them under their real
    // (non-ppn) names must produce nothing because the engine never scans
    // crates whose manifest name falls outside the first-party prefix.
    let src = fixture("no_panic_fail.rs");
    let file = SourceFile::scan("crates/rand/src/x.rs", "rand", Role::Lib, &src);
    assert_eq!(lint_file(&file), Vec::new());
}

#[test]
fn bin_targets_are_exempt_from_no_panic() {
    let src = fixture("no_panic_fail.rs");
    let file = SourceFile::scan("crates/bench/src/bin/x.rs", "ppn-bench", Role::Bin, &src);
    assert!(lint_file(&file).iter().all(|d| d.rule != "no-panic"));
}

#[test]
fn diagnostics_render_rustc_style() {
    let src = fixture("float_eq_fail.rs");
    let file = SourceFile::scan("crates/baselines/src/x.rs", "ppn-baselines", Role::Lib, &src);
    let ds = lint_file(&file);
    let rendered = format!("{}", ds[0]);
    assert!(rendered.starts_with("crates/baselines/src/x.rs:4: error[float-eq]:"), "{rendered}");
}

#[test]
fn no_unsafe_fixtures() {
    // Outside the audited storage/simd modules the keyword itself is the
    // violation, SAFETY comment or not.
    assert_eq!(
        lint_fixture("no_unsafe_fail.rs", "crates/core/src/x.rs", "ppn-core"),
        vec!["no-unsafe"; 2],
    );
    // Inside an audited file only the SAFETY-comment-less line is flagged.
    assert_eq!(
        lint_fixture("no_unsafe_fail.rs", "crates/tensor/src/storage.rs", "ppn-tensor"),
        vec!["no-unsafe"; 1],
    );
    assert_eq!(
        lint_fixture("no_unsafe_pass.rs", "crates/tensor/src/storage.rs", "ppn-tensor"),
        Vec::<&str>::new(),
    );
}

#[test]
fn no_hot_alloc_fixtures() {
    assert_eq!(
        lint_fixture("no_hot_alloc_fail.rs", "crates/tensor/src/graph.rs", "ppn-tensor"),
        vec!["no-hot-alloc"; 3],
    );
    assert_eq!(
        lint_fixture("no_hot_alloc_pass.rs", "crates/tensor/src/graph.rs", "ppn-tensor"),
        Vec::<&str>::new(),
    );
    // The same allocating source claimed at a non-hot path produces nothing.
    assert_eq!(
        lint_fixture("no_hot_alloc_fail.rs", "crates/tensor/src/optim.rs", "ppn-tensor"),
        Vec::<&str>::new(),
    );
}
