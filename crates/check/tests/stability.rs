//! Property tests: diagnostic output is a pure, order-independent function
//! of the file set — permuting the scan order never changes the rendered
//! report, which is what makes the gate's output diffable across machines
//! and file systems.

use ppn_check::{lint_file, Diagnostic, Role, SourceFile};
use proptest::prelude::*;

/// A small pool of synthetic sources with a known mix of findings.
fn pool() -> Vec<SourceFile> {
    let sources: [(&str, &str, &str); 5] = [
        (
            "crates/core/src/a.rs",
            "ppn-core",
            "/// Doc.\npub fn a(x: &[f64]) -> f64 { x.first().copied().unwrap() }\n",
        ),
        (
            "crates/market/src/b.rs",
            "ppn-market",
            "/// Doc.\npub fn b(x: f64) -> bool { x == 0.5 }\n",
        ),
        (
            "crates/baselines/src/c.rs",
            "ppn-baselines",
            "pub fn c() { let v = vec![1]; drop(v); }\n",
        ),
        (
            "crates/tensor/src/d.rs",
            "ppn-tensor",
            "/// Doc.\npub fn d() { panic!(\"boom\") }\n",
        ),
        (
            "crates/obs/src/e.rs",
            "ppn-obs",
            "use std::collections::HashMap;\npub fn e() -> String {\n    let m: HashMap<u32, u32> = HashMap::new();\n    let mut s = String::new();\n    for (k, v) in m.iter() { s.push_str(&format!(\"{k}{v}\")); }\n    s\n}\n",
        ),
    ];
    sources
        .into_iter()
        .map(|(path, krate, src)| SourceFile::scan(path, krate, Role::Lib, src))
        .collect()
}

/// Mimics `run`'s aggregation over an arbitrary file order.
fn lint_in_order(files: &[SourceFile], order: &[usize]) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = order.iter().flat_map(|&i| lint_file(&files[i])).collect();
    out.sort();
    out
}

proptest! {
    #[test]
    fn diagnostics_stable_under_file_order_permutation(
        swaps in proptest::collection::vec((0usize..5, 0usize..5), 0..16),
    ) {
        let files = pool();
        let mut order: Vec<usize> = vec![0, 1, 2, 3, 4];
        for (a, b) in swaps {
            order.swap(a, b);
        }
        let baseline = lint_in_order(&files, &[0, 1, 2, 3, 4]);
        let permuted = lint_in_order(&files, &order);
        prop_assert_eq!(&baseline, &permuted);
        // Rendered output is byte-identical too (what CI diffs against).
        let render = |ds: &[Diagnostic]| {
            ds.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        };
        prop_assert_eq!(render(&baseline), render(&permuted));
        // And the pool exercises the engine: it must find the seeded bugs.
        prop_assert!(baseline.iter().any(|d| d.rule == "no-panic"));
        prop_assert!(baseline.iter().any(|d| d.rule == "float-eq"));
        prop_assert!(baseline.iter().any(|d| d.rule == "hash-iter"));
    }

    #[test]
    fn scanner_never_panics_on_arbitrary_text(
        codes in proptest::collection::vec(0u32..0x300, 0..400),
    ) {
        // Arbitrary text skewed toward the ASCII range where the scanner's
        // state machine (strings, comments, char literals) actually branches.
        let src: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
        let f = SourceFile::scan("crates/core/src/fuzz.rs", "ppn-core", Role::Lib, &src);
        let _ = lint_file(&f);
    }

    #[test]
    fn block_tracker_roundtrips_generated_soup(
        // Each atom appends one construct; balanced braces are emitted in
        // matched pairs by construction, so the true depth at EOF is zero.
        atoms in proptest::collection::vec(0u8..6, 0..60),
    ) {
        let mut src = String::new();
        let mut pending = 0usize;
        for (i, atom) in atoms.iter().enumerate() {
            match atom {
                // A balanced block with a statement inside.
                0 => { src.push_str("fn f() {\n    let x = 1;\n"); pending += 1; }
                // A string literal stuffed with braces — must not count.
                1 => src.push_str(&format!("let s{i} = \"}}}}{{{{\";\n")),
                // A raw string with braces and quotes.
                2 => src.push_str(&format!("let r{i} = r#\"{{\" }}\"#;\n")),
                // Line comment with braces.
                3 => src.push_str("// closing }} and opening {{\n"),
                // Block comment spanning lines, braces inside.
                4 => src.push_str("/* {{{\n   }}} */\n"),
                // Close one pending block if any.
                5 => {
                    if pending > 0 { src.push_str("}\n"); pending -= 1; }
                }
                _ => unreachable!(),
            }
        }
        for _ in 0..pending {
            src.push_str("}\n");
        }
        let f = SourceFile::scan("crates/core/src/soup.rs", "ppn-core", Role::Lib, &src);
        // Depth returns to zero at EOF: every brace the tracker counted was
        // a real code brace, and they balance by construction.
        prop_assert_eq!(f.depths.last().map_or(0, |d| d.1), 0, "src:\n{}", src);
        // Per-line depths chain: each line starts where the previous ended.
        for w in f.depths.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0);
        }
        // And the first line starts at depth zero.
        prop_assert_eq!(f.depths.first().map_or(0, |d| d.0), 0);
    }
}
