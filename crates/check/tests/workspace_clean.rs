//! The tier-1 gate: the workspace itself must lint clean, and the engine's
//! discovery/exemption behaviour must match the real tree.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn workspace_lints_clean() {
    let report = ppn_check::run(&workspace_root()).expect("workspace scan");
    assert!(
        report.is_clean(),
        "ppn-check found {} diagnostic(s):\n{}",
        report.diagnostics.len(),
        report.diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files > 50, "suspiciously few files scanned: {}", report.files);
}

#[test]
fn vendored_shims_are_discovered_but_exempt() {
    let crates = ppn_check::discover(&workspace_root()).expect("discover");
    let shims: Vec<&str> =
        crates.iter().filter(|c| !c.is_first_party()).map(|c| c.name.as_str()).collect();
    for expected in
        ["rand", "serde", "serde_derive", "serde_json", "proptest", "criterion", "parking_lot"]
    {
        assert!(shims.contains(&expected), "{expected} missing from {shims:?}");
    }
    let first_party: Vec<&str> =
        crates.iter().filter(|c| c.is_first_party()).map(|c| c.name.as_str()).collect();
    for expected in [
        "ppn-repro",
        "ppn-core",
        "ppn-market",
        "ppn-baselines",
        "ppn-tensor",
        "ppn-obs",
        "ppn-check",
    ] {
        assert!(first_party.contains(&expected), "{expected} missing from {first_party:?}");
    }
}

#[test]
fn report_counts_shims() {
    let report = ppn_check::run(&workspace_root()).expect("workspace scan");
    assert_eq!(
        report.shims_skipped, 7,
        "rand, serde, serde_derive, serde_json, proptest, criterion, parking_lot"
    );
}
