//! The tier-1 gate: the workspace itself must lint clean, and the engine's
//! discovery/exemption behaviour must match the real tree.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn workspace_lints_clean() {
    let report = ppn_check::run(&workspace_root()).expect("workspace scan");
    assert!(
        report.is_clean(),
        "ppn-check found {} diagnostic(s):\n{}",
        report.diagnostics.len(),
        report.diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files > 50, "suspiciously few files scanned: {}", report.files);
}

#[test]
fn vendored_shims_are_discovered_but_exempt() {
    let crates = ppn_check::discover(&workspace_root()).expect("discover");
    let shims: Vec<&str> =
        crates.iter().filter(|c| !c.is_first_party()).map(|c| c.name.as_str()).collect();
    for expected in [
        "rand",
        "serde",
        "serde_derive",
        "serde_json",
        "proptest",
        "criterion",
        "parking_lot",
        "mio",
    ] {
        assert!(shims.contains(&expected), "{expected} missing from {shims:?}");
    }
    let first_party: Vec<&str> =
        crates.iter().filter(|c| c.is_first_party()).map(|c| c.name.as_str()).collect();
    for expected in [
        "ppn-repro",
        "ppn-core",
        "ppn-market",
        "ppn-baselines",
        "ppn-tensor",
        "ppn-obs",
        "ppn-check",
    ] {
        assert!(first_party.contains(&expected), "{expected} missing from {first_party:?}");
    }
}

#[test]
fn report_counts_shims() {
    let report = ppn_check::run(&workspace_root()).expect("workspace scan");
    assert_eq!(
        report.shims_skipped, 8,
        "rand, serde, serde_derive, serde_json, proptest, criterion, parking_lot, mio"
    );
}

#[test]
fn every_rule_is_timed_once() {
    let report = ppn_check::run(&workspace_root()).expect("workspace scan");
    let file_rules = ppn_check::rules::registry().len();
    let ws_rules = ppn_check::workspace::registry().len();
    assert_eq!(report.timings.len(), file_rules + ws_rules);
    assert_eq!(
        report.timings.iter().filter(|t| t.kind == ppn_check::RuleKind::Workspace).count(),
        ws_rules
    );
    // Timings carry the registry ids, in registry order.
    let ids: Vec<&str> = report.timings.iter().map(|t| t.id).collect();
    assert_eq!(
        &ids[..file_rules],
        &ppn_check::rules::registry().iter().map(|r| r.id).collect::<Vec<_>>()[..]
    );
}

#[test]
fn self_lint_fits_the_runtime_budget() {
    // The gate runs on every `cargo test` and in CI ahead of the build, so
    // it must stay cheap: a full scan + all rules in under 2 seconds.
    let t0 = std::time::Instant::now();
    let report = ppn_check::run(&workspace_root()).expect("workspace scan");
    let elapsed = t0.elapsed();
    assert!(report.files > 50);
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "self-lint took {elapsed:?}, budget is 2s (per-rule timings: {:?})",
        report.timings.iter().map(|t| (t.id, t.micros)).collect::<Vec<_>>()
    );
}

#[test]
fn json_report_is_well_formed() {
    let report = ppn_check::run(&workspace_root()).expect("workspace scan");
    let json = report.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"clean\": true"), "workspace should be clean:\n{json}");
    assert!(json.contains("\"files\":"));
    assert!(json.contains("\"id\": \"lock-order\""));
    assert!(json.contains("\"kind\": \"workspace\""));
    // Balanced delimiters outside strings — a cheap structural check that
    // catches broken escaping without a JSON parser dependency.
    let (mut depth, mut in_str, mut escaped) = (0i32, false, false);
    for c in json.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0);
    }
    assert_eq!(depth, 0);
    assert!(!in_str);
}
