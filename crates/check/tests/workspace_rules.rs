//! Fixture-driven tests for the workspace-level passes: each rule gets a
//! failing and a passing fixture under `crates/check/fixtures/`, assembled
//! into a synthetic [`Workspace`] exactly as the engine would build one.

use ppn_check::workspace::{api_surface, env_registry, Workspace};
use ppn_check::{Role, SourceFile};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn scan(name: &str, claimed_path: &str, crate_name: &str) -> SourceFile {
    SourceFile::scan(claimed_path, crate_name, Role::Lib, &fixture(name))
}

const MANIFEST: &str = "\
[[var]]
name = \"PPN_THREADS\"
crate = \"ppn-tensor\"
default = \"available parallelism\"
effect = \"Worker-pool size.\"
";

#[test]
fn lock_order_fixture_plants_a_detectable_deadlock() {
    let ws = Workspace {
        files: vec![scan("lock_order_fail.rs", "crates/serve/src/pool.rs", "ppn-serve")],
        ..Workspace::default()
    };
    let d = ppn_check::workspace::lock_order::check(&ws);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, "lock-order");
    // Both halves of the AB/BA pattern must be named with their sites:
    // `ab` acquires STATS under JOBS at line 11, `ba` the reverse at 18.
    for site in ["pool.rs:11", "pool.rs:18"] {
        assert!(d[0].message.contains(site), "missing {site} in: {}", d[0].message);
    }
    let clean = Workspace {
        files: vec![scan("lock_order_pass.rs", "crates/serve/src/pool.rs", "ppn-serve")],
        ..Workspace::default()
    };
    assert!(ppn_check::workspace::lock_order::check(&clean).is_empty());
}

#[test]
fn wallclock_fixtures() {
    let fail = Workspace {
        files: vec![scan("wallclock_fail.rs", "crates/core/src/step.rs", "ppn-core")],
        ..Workspace::default()
    };
    let d = ppn_check::workspace::wallclock::check(&fail);
    assert_eq!(d.len(), 2, "{d:?}");
    let pass = Workspace {
        files: vec![scan("wallclock_pass.rs", "crates/core/src/step.rs", "ppn-core")],
        ..Workspace::default()
    };
    assert!(ppn_check::workspace::wallclock::check(&pass).is_empty());
    // The same failing file is exempt when it lives in the obs crate.
    let obs = Workspace {
        files: vec![scan("wallclock_fail.rs", "crates/obs/src/step.rs", "ppn-obs")],
        ..Workspace::default()
    };
    assert!(ppn_check::workspace::wallclock::check(&obs).is_empty());
}

#[test]
fn env_registry_fixtures() {
    let fail = Workspace {
        files: vec![scan("env_registry_fail.rs", "crates/tensor/src/par.rs", "ppn-tensor")],
        env_manifest: Some(MANIFEST.into()),
        ..Workspace::default()
    };
    let d = ppn_check::workspace::env_registry::check(&fail);
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("PPN_UNDECLARED"));
    let pass = Workspace {
        files: vec![scan("env_registry_pass.rs", "crates/tensor/src/par.rs", "ppn-tensor")],
        env_manifest: Some(MANIFEST.into()),
        ..Workspace::default()
    };
    assert!(ppn_check::workspace::env_registry::check(&pass).is_empty());
}

#[test]
fn api_surface_golden_workflow() {
    let files = vec![scan("api_surface_src.rs", "crates/serve/src/pool.rs", "ppn-serve")];
    // No golden yet: the pass demands one.
    let missing = Workspace { files: files.clone(), ..Workspace::default() };
    let d = api_surface::check(&missing);
    assert_eq!(d.len(), 1);
    assert!(d[0].message.contains("--write-api-surface"));
    // `--write-api-surface` writes snapshot(); committing it makes the pass
    // clean, and the snapshot holds exactly the fixture's public items.
    let golden = api_surface::snapshot(&missing);
    for entry in [
        "ppn-serve\tstruct\tPool",
        "ppn-serve\tfield\tPool.workers",
        "ppn-serve\tfn\tPool::submit",
        "ppn-serve\tfn\tspawn",
        "ppn-serve\tconst\tMAX",
    ] {
        assert!(golden.contains(entry), "missing {entry:?} in:\n{golden}");
    }
    for private in ["queue", "rebalance", "internal"] {
        assert!(!golden.contains(private), "{private} leaked into:\n{golden}");
    }
    let blessed = Workspace {
        files: files.clone(),
        api_golden: Some(golden.clone()),
        ..Workspace::default()
    };
    assert!(api_surface::check(&blessed).is_empty());
    // An API change against the committed golden is flagged both ways.
    let mut grown = files.clone();
    grown.push(SourceFile::scan(
        "crates/serve/src/extra.rs",
        "ppn-serve",
        Role::Lib,
        "/// New.\npub fn leaked() {}\n",
    ));
    let widened =
        Workspace { files: grown, api_golden: Some(golden.clone()), ..Workspace::default() };
    let d = api_surface::check(&widened);
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("new pub item") && d[0].message.contains("leaked"));
    let shrunk = Workspace { files: Vec::new(), api_golden: Some(golden), ..Workspace::default() };
    let d = api_surface::check(&shrunk);
    assert!(!d.is_empty());
    assert!(d.iter().all(|x| x.message.contains("no longer exists")));
}

#[test]
fn env_docs_render_matches_manifest() {
    let (entries, diags) = env_registry::parse(MANIFEST);
    assert!(diags.is_empty(), "{diags:?}");
    let table = env_registry::render_table(&entries);
    assert!(table.starts_with("| Variable | Owner | Default | Effect |"));
    assert!(table
        .contains("| `PPN_THREADS` | `ppn-tensor` | available parallelism | Worker-pool size. |"));
    let readme = format!(
        "# title\n\n{}\n{}{}\n",
        env_registry::README_BEGIN,
        table,
        env_registry::README_END
    );
    assert_eq!(env_registry::readme_region(&readme).map(str::trim), Some(table.trim()));
}

#[test]
fn workspace_rules_are_registered_and_allowable() {
    let ids: Vec<&str> = ppn_check::workspace::registry().iter().map(|r| r.id).collect();
    assert_eq!(ids, ["lock-order", "env-registry", "no-wallclock", "api-surface"]);
    // Allow-comments must recognise workspace rule ids (lib.rs uses
    // allow(no-wallclock) on its own timing reads).
    for id in ids {
        assert!(ppn_check::known_rules().contains(&id), "{id} not allowable");
    }
}
