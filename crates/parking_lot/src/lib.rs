//! Vendored shim for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly (a poisoned std
//! lock is recovered rather than propagated, matching parking_lot's
//! semantics of not poisoning on panic).

use std::sync::{self, PoisonError};

/// Mutual exclusion primitive (non-poisoning facade over `std`).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Reader-writer lock (non-poisoning facade over `std`).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_mutation_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison std lock");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5u8);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
    }
}
