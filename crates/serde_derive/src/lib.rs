//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! No `syn`/`quote` (the build environment has no registry access): the
//! macro walks the raw `proc_macro::TokenTree`s, supports exactly the two
//! shapes this workspace derives — named-field structs and unit-variant
//! enums, both without generics — and emits impls of the shim's
//! `serde::Serialize` / `serde::Deserialize` traits as formatted source.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize` for a named-field struct or a
/// unit-variant enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut body = String::new();
            for f in fields {
                body.push_str(&format!(
                    "__s.key(\"{f}\"); ::serde::Serialize::serialize(&self.{f}, __s);\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self, __s: &mut ::serde::Ser) {{\n\
                         __s.begin_obj();\n{body}__s.end_obj();\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => __s.write_str(\"{v}\"),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self, __s: &mut ::serde::Ser) {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives the shim's `serde::Deserialize` for a named-field struct or a
/// unit-variant enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut body = String::new();
            for f in fields {
                body.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize(__v.field(\"{f}\")?)?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{\n{body}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__name) => match __name.as_str() {{\n\
                                 {arms}\
                                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                                     format!(\"unknown {name} variant {{__other}}\"))),\n\
                             }},\n\
                             __other => ::std::result::Result::Err(::serde::Error::msg(\
                                 format!(\"expected {name} name string, got {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Parses the derive input down to (kind, type name, field/variant names).
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<&'static str> = None;
    let mut name: Option<String> = None;
    let mut body: Option<TokenStream> = None;

    while let Some(tt) = tokens.next() {
        match &tt {
            // Outer attribute: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde shim derives do not support generic types");
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match (kind, word.as_str()) {
                    (None, "struct") => kind = Some("struct"),
                    (None, "enum") => kind = Some("enum"),
                    (None, _) => {} // visibility etc.
                    (Some(_), _) if name.is_none() => name = Some(word),
                    _ => {}
                }
            }
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace && kind.is_some() && name.is_some() =>
            {
                body = Some(g.stream());
                break;
            }
            _ => {}
        }
    }

    let name = name.expect("serde shim derive: could not find type name");
    let body = body.expect("serde shim derive: could not find `{ … }` body");
    match kind {
        Some("struct") => Item::Struct { name, fields: named_fields(body) },
        Some("enum") => Item::Enum { name, variants: unit_variants(body) },
        _ => panic!("serde shim derive: expected struct or enum"),
    }
}

/// Extracts field names from a named-struct body; skips attributes,
/// visibility, and the full type (tracking `<…>` depth so commas inside
/// generic arguments don't end a field early).
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde shim derive: unexpected token {other} in struct"),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde shim derive: expected `:` after field `{field}`, got {other:?} \
                 (tuple structs are unsupported)"
            ),
        }
        fields.push(field);
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0usize;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
}

/// Extracts variant names from an enum body; rejects payload-carrying
/// variants, which the shim does not support.
fn unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(id) => {
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    panic!(
                        "serde shim derive: enum variant `{id}` carries data, \
                         only unit variants are supported"
                    );
                }
                variants.push(id.to_string());
            }
            other => panic!("serde shim derive: unexpected token {other} in enum"),
        }
    }
    variants
}
