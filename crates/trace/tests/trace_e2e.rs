//! Full pipeline: a live ppn-serve server with request tracing sampled at
//! 1/1 serves real `/decide` traffic; the JSONL the obs sink writes must
//! render into a flamegraph carrying the documented stage chain
//! (`serve.request;serve.queue_wait` / `…;serve.batch_assemble` /
//! `…;serve.forward` / `…;serve.respond`), a non-empty breakdown, and a
//! waterfall — and `/metrics` must speak Prometheus text along the way.

use ppn_core::config::NetConfig;
use ppn_core::ppn::{PolicyNet, Variant};
use ppn_serve::http::http_request;
use ppn_serve::{DecideRequest, ModelRegistry, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn traced_serve_run_renders_flamegraph_breakdown_and_waterfall() {
    let jsonl = std::env::temp_dir().join(format!("ppn-trace-e2e-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&jsonl);
    ppn_obs::init(ppn_obs::ObsConfig {
        stderr_level: None,
        jsonl_level: Some(ppn_obs::Level::Trace),
        jsonl_path: Some(jsonl.display().to_string()),
        spans: true,
        metrics: true,
    });
    ppn_obs::trace::set_sample_rate(1);

    let cfg =
        NetConfig { window: 8, lstm_hidden: 4, tccb_channels: [3, 4, 4], ..NetConfig::paper(3) };
    let mut rng = StdRng::seed_from_u64(11);
    let net = PolicyNet::new(Variant::PpnLstm, cfg.clone(), &mut rng);
    let registry = std::sync::Arc::new(ModelRegistry::new());
    registry.publish("model", net);
    let server = Server::start(registry, ServeConfig::default()).unwrap();
    let addr = server.addr();

    let window: Vec<f64> = (0..cfg.assets * cfg.window * cfg.features)
        .map(|i| 1.0 + 0.002 * (i as f64 * 0.7).sin())
        .collect();
    let prev_action = vec![1.0 / (cfg.assets as f64 + 1.0); cfg.assets + 1];
    let body =
        serde_json::to_string(&DecideRequest { model: "model".to_string(), window, prev_action })
            .unwrap();
    for _ in 0..4 {
        let (status, resp) = http_request(addr, "POST", "/decide", &body).unwrap();
        assert_eq!(status, 200, "{resp}");
    }

    // The same process also exposes Prometheus text on /metrics.
    let (status, metrics) = http_request(addr, "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("# TYPE serve_latency_ms histogram"), "{metrics}");
    assert!(metrics.contains("serve_latency_ms_bucket{le=\"+Inf\"}"), "{metrics}");

    server.shutdown();
    ppn_obs::trace::set_sample_rate(0);
    ppn_obs::sink::jsonl_flush();

    let text = std::fs::read_to_string(&jsonl).unwrap();
    let events = ppn_trace::parse_events(&text);
    assert!(events.len() >= 4 * 5, "4 requests × 5 spans each, got {}", events.len());

    let flame = ppn_trace::flamegraph(&events);
    for stack in [
        "serve.request;serve.queue_wait",
        "serve.request;serve.batch_assemble",
        "serve.request;serve.forward",
        "serve.request;serve.respond",
    ] {
        assert!(
            flame.lines().any(|l| l.starts_with(&format!("{stack} "))),
            "flamegraph must contain the {stack} stack:\n{flame}"
        );
    }

    let breakdown = ppn_trace::breakdown(&events);
    for name in ["serve.request", "serve.queue_wait", "serve.forward"] {
        assert!(breakdown.contains(name), "breakdown must list {name}:\n{breakdown}");
    }

    let waterfall = ppn_trace::waterfall(&events, None);
    assert!(waterfall.starts_with("trace "), "{waterfall}");
    assert!(waterfall.contains("serve.request"), "{waterfall}");
    assert!(waterfall.contains("  serve.forward"), "children indent:\n{waterfall}");

    let listing = ppn_trace::traces(&events);
    assert!(listing.lines().count() >= 4, "one line per traced request:\n{listing}");
}
