//! `ppn-trace` — render ppn-obs trace JSONL as a flamegraph, a latency
//! breakdown, a waterfall, or a trace listing.
//!
//! ```text
//! ppn-trace flame      FILE...              # collapsed stacks (self-time ns)
//! ppn-trace breakdown  FILE...              # per-span p50/p95/p99 table
//! ppn-trace waterfall  FILE... [--trace ID] # one trace's span tree
//! ppn-trace traces     FILE...              # list trace ids
//! ```
//!
//! `--trace` accepts a full 16-hex trace id or any unique prefix; without
//! it the waterfall shows the trace with the longest span.

use std::process::ExitCode;

const USAGE: &str = "usage: ppn-trace <flame|breakdown|waterfall|traces> FILE... [--trace ID]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((mode, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let mut files: Vec<&str> = Vec::new();
    let mut trace_id: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--trace" {
            match it.next() {
                Some(id) => trace_id = Some(id.clone()),
                None => {
                    eprintln!("--trace needs an id\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(arg);
        }
    }
    if files.is_empty() {
        eprintln!("no input files\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut events = Vec::new();
    for path in files {
        match std::fs::read_to_string(path) {
            Ok(text) => events.extend(ppn_trace::parse_events(&text)),
            Err(e) => {
                eprintln!("ppn-trace: {path}: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if events.is_empty() {
        eprintln!("ppn-trace: no trace.span events found (is PPN_TRACE_SAMPLE set?)");
        return ExitCode::from(1);
    }

    let out = match mode.as_str() {
        "flame" => ppn_trace::flamegraph(&events),
        "breakdown" => ppn_trace::breakdown(&events),
        "waterfall" => ppn_trace::waterfall(&events, trace_id.as_deref()),
        "traces" => ppn_trace::traces(&events),
        other => {
            eprintln!("unknown mode '{other}'\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    print!("{out}");
    ExitCode::SUCCESS
}
