#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # ppn-trace
//!
//! Offline profiler for the `trace.span` JSONL events emitted by `ppn-obs`
//! request tracing (`PPN_TRACE_SAMPLE=1/N`). Feed it the JSONL sink output
//! of a serve or training run and it renders:
//!
//! * a **flamegraph** in collapsed-stack format (one `path;to;span value`
//!   line per stack, value = self-time in nanoseconds) — pipe into any
//!   inferno/FlameGraph-compatible renderer;
//! * a **latency breakdown** — per span name: count, p50/p95/p99 and total
//!   duration in milliseconds;
//! * a **waterfall** — the span tree of one trace with per-span offsets,
//!   the ground truth for where a single request spent its time;
//! * a **trace listing** — one line per trace id, for picking a waterfall.
//!
//! The parser is tolerant: non-JSON lines, non-`trace.span` events, and
//! records with missing fields are skipped, so the same JSONL stream can
//! interleave log events, metrics flushes, and spans.

use serde_json::Value;
use std::collections::BTreeMap;

/// The all-zero span id that marks a root span's parent link.
pub const NO_PARENT: &str = "0000000000000000";

/// One `trace.span` record from a ppn-obs JSONL stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Trace id (16 hex digits) shared by every span of one request.
    pub trace: String,
    /// This span's id (16 hex digits).
    pub span: String,
    /// Parent span id; [`NO_PARENT`] for roots.
    pub parent: String,
    /// Stage name, e.g. `serve.queue_wait`.
    pub name: String,
    /// Start offset on the emitting process's monotonic timebase, ns.
    pub start_ns: u64,
    /// Span duration, ns.
    pub dur_ns: u64,
}

fn str_of(v: &Value, key: &str) -> Option<String> {
    match v.field(key) {
        Ok(Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn num_of(v: &Value, key: &str) -> Option<u64> {
    match v.field(key) {
        Ok(Value::Num(n)) if *n >= 0.0 && n.is_finite() => Some(*n as u64),
        _ => None,
    }
}

/// Parses a JSONL stream, keeping only well-formed `trace.span` events.
///
/// Lines that are not JSON, not span events, or are missing any of the
/// span fields are silently skipped — a trace log shares its file with
/// ordinary log events by design.
pub fn parse_events(text: &str) -> Vec<SpanEvent> {
    text.lines()
        .filter_map(|line| Value::parse(line.trim()).ok())
        .filter(|v| matches!(v.field("event"), Ok(Value::Str(s)) if s == "trace.span"))
        .filter_map(|v| {
            Some(SpanEvent {
                trace: str_of(&v, "trace")?,
                span: str_of(&v, "span")?,
                parent: str_of(&v, "parent")?,
                name: str_of(&v, "name")?,
                start_ns: num_of(&v, "start_ns")?,
                dur_ns: num_of(&v, "dur_ns")?,
            })
        })
        .collect()
}

/// Per-trace index: span id → event index, parent id → child event indices.
struct TraceIndex<'a> {
    events: Vec<&'a SpanEvent>,
    by_span: BTreeMap<&'a str, usize>,
    children: BTreeMap<&'a str, Vec<usize>>,
}

fn index_traces<'a>(events: &'a [SpanEvent]) -> BTreeMap<&'a str, TraceIndex<'a>> {
    let mut traces: BTreeMap<&str, TraceIndex<'a>> = BTreeMap::new();
    for e in events {
        let t = traces.entry(e.trace.as_str()).or_insert_with(|| TraceIndex {
            events: Vec::new(),
            by_span: BTreeMap::new(),
            children: BTreeMap::new(),
        });
        let idx = t.events.len();
        t.events.push(e);
        t.by_span.insert(e.span.as_str(), idx);
        t.children.entry(e.parent.as_str()).or_default().push(idx);
    }
    // Deterministic child order: by start offset, then name.
    for t in traces.values_mut() {
        for kids in t.children.values_mut() {
            let evs = &t.events;
            kids.sort_by(|&a, &b| {
                evs[a].start_ns.cmp(&evs[b].start_ns).then_with(|| evs[a].name.cmp(&evs[b].name))
            });
        }
    }
    traces
}

/// A span whose parent id is unknown in its trace counts as a root (the
/// parent may have been dropped by sampling or a truncated log).
fn is_root(t: &TraceIndex<'_>, e: &SpanEvent) -> bool {
    e.parent == NO_PARENT || !t.by_span.contains_key(e.parent.as_str())
}

/// Semicolon-joined ancestor path of `idx` within its trace, root first.
/// Cycles (malformed input) are cut at a fixed depth instead of looping.
fn stack_path(t: &TraceIndex<'_>, idx: usize) -> String {
    let mut names: Vec<&str> = Vec::new();
    let mut cur = Some(idx);
    let mut depth = 0usize;
    while let Some(i) = cur {
        let e = t.events[i];
        names.push(e.name.as_str());
        depth += 1;
        if depth > 128 || is_root(t, e) {
            break;
        }
        cur = t.by_span.get(e.parent.as_str()).copied();
    }
    names.reverse();
    names.join(";")
}

/// Renders the collapsed-stack flamegraph body: one `path value` line per
/// distinct stack, sorted by path, where `value` is the stack's **self
/// time** in nanoseconds (duration minus the time covered by child spans),
/// summed over every occurrence across all traces. Zero-self stacks whose
/// children account for all of their time are omitted, matching the
/// collapsed-stack convention that every line carries weight.
pub fn flamegraph(events: &[SpanEvent]) -> String {
    let traces = index_traces(events);
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for t in traces.values() {
        for (idx, e) in t.events.iter().enumerate() {
            let child_ns: u64 = t
                .children
                .get(e.span.as_str())
                .map(|kids| kids.iter().map(|&k| t.events[k].dur_ns).sum())
                .unwrap_or(0);
            let self_ns = e.dur_ns.saturating_sub(child_ns);
            if self_ns > 0 {
                *stacks.entry(stack_path(t, idx)).or_insert(0) += self_ns;
            }
        }
    }
    let mut out = String::new();
    for (path, ns) in stacks {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// One row of the per-stage latency breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Span name the row aggregates.
    pub name: String,
    /// Number of spans with this name.
    pub count: usize,
    /// Median duration, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile duration, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile duration, milliseconds.
    pub p99_ms: f64,
    /// Sum of all durations, milliseconds.
    pub total_ms: f64,
}

/// Nearest-rank percentile over an ascending-sorted slice; `q` in `[0, 1]`.
fn percentile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted_ns.len() as f64).ceil() as usize;
    let idx = rank.clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx] as f64 / 1e6
}

/// Aggregates spans by name into latency rows, sorted by total time
/// (descending) so the most expensive stage leads the table.
pub fn breakdown_rows(events: &[SpanEvent]) -> Vec<BreakdownRow> {
    let mut by_name: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for e in events {
        by_name.entry(e.name.as_str()).or_default().push(e.dur_ns);
    }
    let mut rows: Vec<BreakdownRow> = by_name
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_unstable();
            let total: u64 = durs.iter().sum();
            BreakdownRow {
                name: name.to_string(),
                count: durs.len(),
                p50_ms: percentile(&durs, 0.50),
                p95_ms: percentile(&durs, 0.95),
                p99_ms: percentile(&durs, 0.99),
                total_ms: total as f64 / 1e6,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms).then_with(|| a.name.cmp(&b.name)));
    rows
}

/// Renders the latency breakdown as an aligned text table.
pub fn breakdown(events: &[SpanEvent]) -> String {
    let rows = breakdown_rows(events);
    if rows.is_empty() {
        return String::new();
    }
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
    let mut out = format!(
        "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>12}\n",
        "span", "count", "p50_ms", "p95_ms", "p99_ms", "total_ms"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>10.3}  {:>10.3}  {:>10.3}  {:>12.3}\n",
            r.name, r.count, r.p50_ms, r.p95_ms, r.p99_ms, r.total_ms
        ));
    }
    out
}

/// Lists every trace in the stream: id, root span name, span count, and
/// root duration — one per line, longest root first. Use a listed id (or
/// any unique prefix) with [`waterfall`].
pub fn traces(events: &[SpanEvent]) -> String {
    let index = index_traces(events);
    let mut lines: Vec<(u64, String)> = index
        .iter()
        .map(|(id, t)| {
            let root = t
                .events
                .iter()
                .filter(|e| is_root(t, e))
                .max_by_key(|e| e.dur_ns)
                .map(|e| (e.name.as_str(), e.dur_ns))
                .unwrap_or(("?", 0));
            let line = format!(
                "{id}  {:<24}  spans={:<4}  dur_ms={:.3}",
                root.0,
                t.events.len(),
                root.1 as f64 / 1e6
            );
            (root.1, line)
        })
        .collect();
    lines.sort_by_key(|l| std::cmp::Reverse(l.0));
    lines.into_iter().map(|(_, l)| l + "\n").collect()
}

fn render_waterfall_node(
    t: &TraceIndex<'_>,
    idx: usize,
    base_ns: u64,
    depth: usize,
    out: &mut String,
) {
    if depth > 128 {
        return;
    }
    let e = t.events[idx];
    let offset_ms = e.start_ns.saturating_sub(base_ns) as f64 / 1e6;
    let dur_ms = e.dur_ns as f64 / 1e6;
    out.push_str(&format!("{offset_ms:>10.3} {dur_ms:>10.3}  {}{}\n", "  ".repeat(depth), e.name));
    if let Some(kids) = t.children.get(e.span.as_str()) {
        for &k in kids {
            if k != idx {
                render_waterfall_node(t, k, base_ns, depth + 1, out);
            }
        }
    }
}

/// Renders one trace as a waterfall: `offset_ms dur_ms  name` per span,
/// children indented under their parent, offsets relative to the trace's
/// earliest span.
///
/// `trace_id` selects the trace by exact id or unique prefix; `None` (or an
/// ambiguous/unknown prefix) falls back to the trace with the longest root
/// span. Returns an empty string when the stream holds no spans.
pub fn waterfall(events: &[SpanEvent], trace_id: Option<&str>) -> String {
    let index = index_traces(events);
    let chosen: Option<&str> = match trace_id {
        Some(prefix) => {
            let matches: Vec<&str> =
                index.keys().copied().filter(|id| id.starts_with(prefix)).collect();
            match matches.as_slice() {
                [one] => Some(*one),
                _ => None,
            }
        }
        None => None,
    };
    let chosen = chosen.or_else(|| {
        index
            .iter()
            .map(|(id, t)| (*id, t.events.iter().map(|e| e.dur_ns).max().unwrap_or(0)))
            .max_by_key(|&(_, dur)| dur)
            .map(|(id, _)| id)
    });
    let Some(id) = chosen else { return String::new() };
    let Some(t) = index.get(id) else { return String::new() };
    let base_ns = t.events.iter().map(|e| e.start_ns).min().unwrap_or(0);
    let mut out = format!("trace {id}\n{:>10} {:>10}  span\n", "offset_ms", "dur_ms");
    let mut roots: Vec<usize> = (0..t.events.len()).filter(|&i| is_root(t, t.events[i])).collect();
    roots.sort_by_key(|&i| t.events[i].start_ns);
    for r in roots {
        render_waterfall_node(t, r, base_ns, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: &str, span: &str, parent: &str, name: &str, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            trace: trace.into(),
            span: span.into(),
            parent: parent.into(),
            name: name.into(),
            start_ns: start,
            dur_ns: dur,
        }
    }

    fn sample() -> Vec<SpanEvent> {
        vec![
            ev("t1", "a", NO_PARENT, "serve.request", 0, 10_000_000),
            ev("t1", "b", "a", "serve.queue_wait", 0, 2_000_000),
            ev("t1", "c", "a", "serve.forward", 2_000_000, 6_000_000),
            ev("t2", "d", NO_PARENT, "serve.request", 50, 4_000_000),
        ]
    }

    #[test]
    fn parser_skips_garbage_and_non_span_lines() {
        let text = concat!(
            "not json at all\n",
            "{\"event\":\"log\",\"msg\":\"hi\"}\n",
            "{\"event\":\"trace.span\",\"trace\":\"t\",\"span\":\"s\",\"parent\":\"0000000000000000\",",
            "\"name\":\"x\",\"start_ns\":5,\"dur_ns\":7}\n",
            "{\"event\":\"trace.span\",\"trace\":\"t\"}\n",
        );
        let evs = parse_events(text);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "x");
        assert_eq!(evs[0].start_ns, 5);
        assert_eq!(evs[0].dur_ns, 7);
    }

    #[test]
    fn flamegraph_charges_self_time_along_the_stack() {
        let text = flamegraph(&sample());
        // Root self time: 10ms − (2ms + 6ms) children = 2ms, plus t2's 4ms.
        assert!(text.contains("serve.request 6000000\n"), "{text}");
        assert!(text.contains("serve.request;serve.queue_wait 2000000\n"), "{text}");
        assert!(text.contains("serve.request;serve.forward 6000000\n"), "{text}");
        // Collapsed-stack shape: every line is `path value`.
        for line in text.lines() {
            let (path, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(!path.is_empty());
            assert!(value.parse::<u64>().is_ok(), "value must be integer ns: {line}");
        }
    }

    #[test]
    fn orphaned_spans_become_roots_instead_of_vanishing() {
        let evs = vec![ev("t", "s", "missing-parent", "lonely", 0, 5)];
        let text = flamegraph(&evs);
        assert_eq!(text, "lonely 5\n");
    }

    #[test]
    fn breakdown_sorts_by_total_and_computes_percentiles() {
        let rows = breakdown_rows(&sample());
        assert_eq!(rows[0].name, "serve.request", "two requests dominate total time");
        assert_eq!(rows[0].count, 2);
        assert!((rows[0].p50_ms - 4.0).abs() < 1e-9, "median of 4ms/10ms by nearest rank");
        assert!((rows[0].p99_ms - 10.0).abs() < 1e-9);
        assert!((rows[0].total_ms - 14.0).abs() < 1e-9);
        let table = breakdown(&sample());
        assert!(table.starts_with("span"), "{table}");
        assert!(table.contains("serve.queue_wait"), "{table}");
    }

    #[test]
    fn waterfall_selects_by_prefix_and_defaults_to_longest_trace() {
        let w = waterfall(&sample(), Some("t2"));
        assert!(w.starts_with("trace t2\n"), "{w}");
        assert!(w.contains("serve.request"), "{w}");
        assert!(!w.contains("serve.forward"), "t2 has no children: {w}");
        // No id → the longest trace (t1), children indented under the root.
        let w = waterfall(&sample(), None);
        assert!(w.starts_with("trace t1\n"), "{w}");
        assert!(w.contains("  serve.queue_wait"), "{w}");
        let listing = traces(&sample());
        assert!(listing.lines().count() == 2, "{listing}");
        assert!(listing.starts_with("t1"), "longest trace listed first: {listing}");
    }
}
