//! End-to-end tests for ppn-serve: concurrent decide requests must be
//! bit-identical to direct single-sample `PolicyNet::act`, the health /
//! metrics endpoints must work, error paths must map to the right HTTP
//! statuses, and shutdown must be graceful.
//!
//! Metrics share one process-global registry, so these tests only assert
//! monotone facts (counts grew, histogram non-empty) and never reset it.

use ppn_core::config::NetConfig;
use ppn_core::ppn::{PolicyNet, Variant};
use ppn_serve::batcher::process_batch;
use ppn_serve::http::http_request;
use ppn_serve::queue::{QueuedRequest, RequestQueue};
use ppn_serve::{DecideRequest, DecideResponse, ModelRegistry, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::sync::mpsc;
use std::time::Instant;

fn small_cfg(assets: usize) -> NetConfig {
    NetConfig { window: 8, lstm_hidden: 4, tccb_channels: [3, 4, 4], ..NetConfig::paper(assets) }
}

fn probe_inputs(cfg: &NetConfig, salt: u64) -> (Vec<f64>, Vec<f64>) {
    let window: Vec<f64> = (0..cfg.assets * cfg.window * cfg.features)
        .map(|i| 1.0 + 0.003 * ((i as u64 + 7 * salt) as f64 * 0.9).sin())
        .collect();
    let prev = vec![1.0 / (cfg.assets as f64 + 1.0); cfg.assets + 1];
    (window, prev)
}

/// Starts a server with one seeded PPN-LSTM model named `model`, returning
/// the handle plus the per-salt expected outputs of the direct `act` path.
fn start_server(n_expected: u64) -> (Server, Vec<Vec<f64>>, NetConfig) {
    let cfg = small_cfg(3);
    let mut rng = StdRng::seed_from_u64(42);
    let net = PolicyNet::new(Variant::PpnLstm, cfg.clone(), &mut rng);
    let expected: Vec<Vec<f64>> = (0..n_expected)
        .map(|salt| {
            let (w, p) = probe_inputs(&cfg, salt);
            net.act(&w, &p)
        })
        .collect();
    let mut registry = ModelRegistry::new();
    registry.insert("model", net);
    let server = Server::start(registry, ServeConfig::default()).unwrap();
    (server, expected, cfg)
}

fn decide_body(cfg: &NetConfig, salt: u64) -> String {
    let (window, prev_action) = probe_inputs(cfg, salt);
    serde_json::to_string(&DecideRequest { model: "model".to_string(), window, prev_action })
        .unwrap()
}

#[test]
fn concurrent_decides_are_bit_identical_to_direct_act() {
    let clients = 8;
    let (server, expected, cfg) = start_server(clients as u64);
    let addr = server.addr();
    let bodies: Vec<String> = (0..clients).map(|i| decide_body(&cfg, i as u64)).collect();

    // Fan the requests out on the tensor worker pool (bench/test code may
    // not spawn raw threads) so several land inside one gather window.
    let responses = ppn_tensor::par::with_threads(clients, || {
        ppn_tensor::par::par_map(clients, |i| http_request(addr, "POST", "/decide", &bodies[i]))
    });

    let mut max_batch = 0usize;
    for (i, resp) in responses.into_iter().enumerate() {
        let (status, body) = resp.unwrap();
        assert_eq!(status, 200, "client {i}: body {body}");
        let resp: DecideResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(resp.model, "model");
        let got: Vec<u64> = resp.weights.iter().map(|w| w.to_bits()).collect();
        let want: Vec<u64> = expected[i].iter().map(|w| w.to_bits()).collect();
        assert_eq!(got, want, "client {i}: batched weights must be bit-identical to act()");
        max_batch = max_batch.max(resp.batch_size);
    }
    assert!(max_batch >= 1);
    server.shutdown();
}

#[test]
fn health_and_metrics_endpoints_respond() {
    let (server, _expected, cfg) = start_server(1);
    let addr = server.addr();

    // One decide so serve.latency_ms has at least one observation.
    let (status, _) = http_request(addr, "POST", "/decide", &decide_body(&cfg, 0)).unwrap();
    assert_eq!(status, 200);

    let (status, body) = http_request(addr, "GET", "/health", "").unwrap();
    assert_eq!(status, 200);
    let health = Value::parse(&body).unwrap();
    match health.field("status").unwrap() {
        Value::Str(s) => assert_eq!(s, "ok"),
        other => panic!("unexpected status value {other:?}"),
    }
    assert!(body.contains("\"model\""), "health must list registered models: {body}");

    // /metrics speaks Prometheus text exposition (sanitized metric names,
    // TYPE comments, cumulative buckets ending in +Inf).
    let (status, body) = http_request(addr, "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("# TYPE serve_latency_ms histogram"),
        "metrics must expose serve_latency_ms as a histogram: {body}"
    );
    assert!(
        body.contains("serve_batch_size_bucket{le=\"+Inf\"}"),
        "histograms must end in a +Inf bucket: {body}"
    );
    assert!(body.contains("serve_latency_ms_count"), "histogram count line: {body}");
    assert!(body.contains("# TYPE serve_requests counter"), "counter TYPE line: {body}");
    assert!(body.contains("# TYPE serve_queue_depth gauge"), "gauge TYPE line: {body}");

    // The JSON snapshot stays available at /metrics.json for tooling that
    // wants the raw structure.
    let (status, body) = http_request(addr, "GET", "/metrics.json", "").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("serve.latency_ms"), "JSON keeps dotted names: {body}");
    assert!(Value::parse(&body).is_ok(), "metrics.json must parse as JSON: {body}");

    // The histogram must be non-empty after a successful decide.
    assert!(ppn_serve::metrics::latency_ms().count() > 0);
    assert!(ppn_serve::metrics::batch_size().count() > 0);
    server.shutdown();
}

#[test]
fn error_paths_map_to_http_statuses() {
    let (server, _expected, cfg) = start_server(1);
    let addr = server.addr();

    let (status, body) = http_request(addr, "POST", "/decide", "{not json").unwrap();
    assert_eq!(status, 400, "bad JSON: {body}");

    let mut req = serde_json::from_str::<DecideRequest>(&decide_body(&cfg, 0)).unwrap();
    req.model = "nope".to_string();
    let (status, body) =
        http_request(addr, "POST", "/decide", &serde_json::to_string(&req).unwrap()).unwrap();
    assert_eq!(status, 404, "unknown model: {body}");
    assert!(body.contains("nope"), "error should name the model: {body}");

    let mut req = serde_json::from_str::<DecideRequest>(&decide_body(&cfg, 0)).unwrap();
    req.window.pop();
    let (status, body) =
        http_request(addr, "POST", "/decide", &serde_json::to_string(&req).unwrap()).unwrap();
    assert_eq!(status, 400, "wrong window length: {body}");

    let (status, _) = http_request(addr, "GET", "/decide", "").unwrap();
    assert_eq!(status, 405, "GET on /decide");

    let (status, _) = http_request(addr, "POST", "/bogus", "{}").unwrap();
    assert_eq!(status, 404, "unknown route");
    server.shutdown();
}

#[test]
fn shutdown_is_graceful_and_idempotent_under_drop() {
    let (server, _expected, cfg) = start_server(1);
    let addr = server.addr();
    let (status, _) = http_request(addr, "POST", "/decide", &decide_body(&cfg, 0)).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
    // Post-shutdown the port no longer serves decisions.
    assert!(http_request(addr, "POST", "/decide", &decide_body(&cfg, 0)).is_err());

    // Dropping without an explicit shutdown must also join cleanly.
    let (server2, _expected, _cfg) = start_server(1);
    drop(server2);
}

#[test]
fn process_batch_coalesces_jobs_into_one_forward_pass() {
    let cfg = small_cfg(3);
    let mut rng = StdRng::seed_from_u64(7);
    let net = PolicyNet::new(Variant::PpnLstm, cfg.clone(), &mut rng);
    let mut registry = ModelRegistry::new();
    registry.insert("m", net);

    let queue = RequestQueue::new();
    let n = 5;
    let mut receivers = Vec::new();
    for salt in 0..n {
        let (window, prev_action) = probe_inputs(&cfg, salt);
        let (tx, rx) = mpsc::channel();
        queue.push(QueuedRequest {
            request: DecideRequest { model: "m".to_string(), window, prev_action },
            reply: tx,
            enqueued_at: Instant::now(),
            trace: ppn_obs::TraceContext::inert(),
        });
        receivers.push(rx);
    }
    assert_eq!(queue.len(), n as usize);
    process_batch(&registry, queue.drain(16));
    assert!(queue.is_empty());
    for rx in receivers {
        let resp = rx.recv().unwrap().unwrap();
        assert_eq!(resp.batch_size, n as usize, "all jobs must share one forward pass");
        let sum: f64 = resp.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights must lie on the simplex: {sum}");
    }
}
