//! End-to-end tests for ppn-serve: concurrent decide requests must be
//! bit-identical to direct single-sample `PolicyNet::act`, keep-alive and
//! pipelined connections must get ordered responses, overload must shed
//! with 429 (never queue without bound), error paths must map to the right
//! HTTP statuses *and* still be metered, and shutdown must stay bounded
//! even with idle or slow-loris connections attached.
//!
//! Metrics share one process-global registry, so these tests only assert
//! monotone facts (counts grew, histogram non-empty) and never reset it.

use ppn_core::config::NetConfig;
use ppn_core::ppn::{PolicyNet, Variant};
use ppn_serve::batcher::process_batch;
use ppn_serve::http::{http_request, HttpClient};
use ppn_serve::queue::{reply_pair, QueuedRequest, RequestQueue};
use ppn_serve::{DecideRequest, DecideResponse, ModelRegistry, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_cfg(assets: usize) -> NetConfig {
    NetConfig { window: 8, lstm_hidden: 4, tccb_channels: [3, 4, 4], ..NetConfig::paper(assets) }
}

fn probe_inputs(cfg: &NetConfig, salt: u64) -> (Vec<f64>, Vec<f64>) {
    let window: Vec<f64> = (0..cfg.assets * cfg.window * cfg.features)
        .map(|i| 1.0 + 0.003 * ((i as u64 + 7 * salt) as f64 * 0.9).sin())
        .collect();
    let prev = vec![1.0 / (cfg.assets as f64 + 1.0); cfg.assets + 1];
    (window, prev)
}

/// Starts a server with one seeded PPN-LSTM model named `model` and the
/// given config, returning the handle plus the per-salt expected outputs of
/// the direct `act` path.
fn start_server_with(
    n_expected: u64,
    serve_cfg: ServeConfig,
) -> (Server, Vec<Vec<f64>>, NetConfig) {
    let (server, expected, cfg, _registry) = start_server_with_registry(n_expected, serve_cfg);
    (server, expected, cfg)
}

/// As [`start_server_with`], but also hands back the shared registry so a
/// test can publish/rollback into the running server.
fn start_server_with_registry(
    n_expected: u64,
    serve_cfg: ServeConfig,
) -> (Server, Vec<Vec<f64>>, NetConfig, Arc<ModelRegistry>) {
    let cfg = small_cfg(3);
    let mut rng = StdRng::seed_from_u64(42);
    let net = PolicyNet::new(Variant::PpnLstm, cfg.clone(), &mut rng);
    let expected: Vec<Vec<f64>> = (0..n_expected)
        .map(|salt| {
            let (w, p) = probe_inputs(&cfg, salt);
            net.act(&w, &p)
        })
        .collect();
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("model", net);
    let server = Server::start(Arc::clone(&registry), serve_cfg).unwrap();
    (server, expected, cfg, registry)
}

fn start_server(n_expected: u64) -> (Server, Vec<Vec<f64>>, NetConfig) {
    start_server_with(n_expected, ServeConfig::default())
}

fn decide_body(cfg: &NetConfig, salt: u64) -> String {
    let (window, prev_action) = probe_inputs(cfg, salt);
    serde_json::to_string(&DecideRequest { model: "model".to_string(), window, prev_action })
        .unwrap()
}

#[test]
fn concurrent_decides_are_bit_identical_to_direct_act() {
    let clients = 8;
    let (server, expected, cfg) = start_server(clients as u64);
    let addr = server.addr();
    let bodies: Vec<String> = (0..clients).map(|i| decide_body(&cfg, i as u64)).collect();

    // Fan the requests out on the tensor worker pool (bench/test code may
    // not spawn raw threads) so several land inside one gather window.
    let responses = ppn_tensor::par::with_threads(clients, || {
        ppn_tensor::par::par_map(clients, |i| http_request(addr, "POST", "/decide", &bodies[i]))
    });

    let mut max_batch = 0usize;
    for (i, resp) in responses.into_iter().enumerate() {
        let (status, body) = resp.unwrap();
        assert_eq!(status, 200, "client {i}: body {body}");
        let resp: DecideResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(resp.model, "model");
        let got: Vec<u64> = resp.weights.iter().map(|w| w.to_bits()).collect();
        let want: Vec<u64> = expected[i].iter().map(|w| w.to_bits()).collect();
        assert_eq!(got, want, "client {i}: batched weights must be bit-identical to act()");
        max_batch = max_batch.max(resp.batch_size);
    }
    assert!(max_batch >= 1);
    server.shutdown();
}

#[test]
fn keep_alive_connection_serves_many_requests() {
    let (server, expected, cfg) = start_server(4);
    let mut client = HttpClient::connect(server.addr()).unwrap();
    for salt in 0..4u64 {
        let resp = client.request("POST", "/decide", &decide_body(&cfg, salt)).unwrap();
        assert_eq!(resp.status, 200, "salt {salt}: {}", resp.body);
        assert!(
            resp.headers.contains("Connection: keep-alive"),
            "decide responses on a 1.1 connection must keep it alive: {}",
            resp.headers
        );
        let parsed: DecideResponse = serde_json::from_str(&resp.body).unwrap();
        let got: Vec<u64> = parsed.weights.iter().map(|w| w.to_bits()).collect();
        let want: Vec<u64> = expected[salt as usize].iter().map(|w| w.to_bits()).collect();
        assert_eq!(got, want, "salt {salt}");
    }
    // Mixed routes ride the same connection.
    let resp = client.request("GET", "/health", "").unwrap();
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn pipelined_requests_get_ordered_responses() {
    let n = 6u64;
    let (server, expected, cfg) = start_server(n);
    let mut client = HttpClient::connect(server.addr()).unwrap();
    // Write every request before reading a single response: the server must
    // parse them all from the buffer and answer strictly in request order.
    for salt in 0..n {
        client.send("POST", "/decide", &decide_body(&cfg, salt)).unwrap();
    }
    for salt in 0..n {
        let resp = client.recv().unwrap();
        assert_eq!(resp.status, 200, "salt {salt}: {}", resp.body);
        let parsed: DecideResponse = serde_json::from_str(&resp.body).unwrap();
        let got: Vec<u64> = parsed.weights.iter().map(|w| w.to_bits()).collect();
        let want: Vec<u64> = expected[salt as usize].iter().map(|w| w.to_bits()).collect();
        assert_eq!(got, want, "response {salt} must answer request {salt} (ordering)");
    }
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    // queue_cap 0: every decide is refused at admission — deterministic
    // shedding regardless of batcher timing.
    let serve_cfg = ServeConfig { queue_cap: 0, ..ServeConfig::default() };
    let (server, _expected, cfg) = start_server_with(0, serve_cfg);
    let shed_before = ppn_serve::metrics::shed().get();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    for _ in 0..3 {
        let resp = client.request("POST", "/decide", &decide_body(&cfg, 0)).unwrap();
        assert_eq!(resp.status, 429, "{}", resp.body);
        assert!(resp.headers.contains("Retry-After: 1"), "{}", resp.headers);
        assert!(
            resp.headers.contains("Connection: keep-alive"),
            "shedding must not tear down the connection: {}",
            resp.headers
        );
    }
    assert!(ppn_serve::metrics::shed().get() >= shed_before + 3);
    // Non-decide routes are unaffected by decision-queue pressure.
    let resp = client.request("GET", "/health", "").unwrap();
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn connection_limit_refuses_with_503() {
    let serve_cfg = ServeConfig { max_conns: 1, ..ServeConfig::default() };
    let (server, _expected, _cfg) = start_server_with(0, serve_cfg);
    let mut first = HttpClient::connect(server.addr()).unwrap();
    assert_eq!(first.request("GET", "/health", "").unwrap().status, 200);
    // The second connection is over the limit: refused with a best-effort
    // 503 and closed. An Err means it was dropped before the response could
    // be read — also a refusal, so only a readable status is asserted on.
    if let Ok((status, _)) = http_request(server.addr(), "GET", "/health", "") {
        assert_eq!(status, 503);
    }
    // The admitted connection keeps working.
    assert_eq!(first.request("GET", "/health", "").unwrap().status, 200);
    server.shutdown();
}

#[test]
fn error_paths_map_to_http_statuses() {
    let (server, _expected, cfg) = start_server(1);
    let addr = server.addr();

    let (status, body) = http_request(addr, "POST", "/decide", "{not json").unwrap();
    assert_eq!(status, 400, "bad JSON: {body}");

    let mut req = serde_json::from_str::<DecideRequest>(&decide_body(&cfg, 0)).unwrap();
    req.model = "nope".to_string();
    let (status, body) =
        http_request(addr, "POST", "/decide", &serde_json::to_string(&req).unwrap()).unwrap();
    assert_eq!(status, 404, "unknown model: {body}");
    assert!(body.contains("nope"), "error should name the model: {body}");

    let mut req = serde_json::from_str::<DecideRequest>(&decide_body(&cfg, 0)).unwrap();
    req.window.pop();
    let (status, body) =
        http_request(addr, "POST", "/decide", &serde_json::to_string(&req).unwrap()).unwrap();
    assert_eq!(status, 400, "wrong window length: {body}");

    let (status, _) = http_request(addr, "GET", "/decide", "").unwrap();
    assert_eq!(status, 405, "GET on /decide");

    let (status, _) = http_request(addr, "POST", "/bogus", "{}").unwrap();
    assert_eq!(status, 404, "unknown route");
    server.shutdown();
}

#[test]
fn every_outcome_is_metered_including_malformed() {
    let (server, _expected, _cfg) = start_server(0);
    let addr = server.addr();
    let requests_before = ppn_serve::metrics::requests().get();
    let errors_before = ppn_serve::metrics::errors().get();
    let latency_before = ppn_serve::metrics::latency_ms().count();

    // A request that never parses still counts: it arrived, it errored, and
    // its latency was observed (the old code only metered the 200 path).
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let mut raw = String::new();
    use std::io::Read;
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 400 "), "{raw}");
    drop(stream);

    // An error-status route outcome is metered too.
    let (status, _) = http_request(addr, "POST", "/bogus", "{}").unwrap();
    assert_eq!(status, 404);

    assert!(ppn_serve::metrics::requests().get() >= requests_before + 2);
    assert!(ppn_serve::metrics::errors().get() >= errors_before + 2);
    assert!(ppn_serve::metrics::latency_ms().count() >= latency_before + 2);
    server.shutdown();
}

#[test]
fn slow_request_times_out_with_408() {
    let serve_cfg =
        ServeConfig { read_timeout: Duration::from_millis(150), ..ServeConfig::default() };
    let (server, _expected, _cfg) = start_server_with(0, serve_cfg);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Half a request head, then silence: the read deadline must answer 408
    // and close instead of holding the connection open forever.
    stream.write_all(b"POST /decide HTTP/1.1\r\nContent-").unwrap();
    let mut raw = String::new();
    use std::io::Read;
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 408 "), "{raw}");
    server.shutdown();
}

#[test]
fn health_and_metrics_endpoints_respond() {
    let (server, _expected, cfg) = start_server(1);
    let addr = server.addr();

    // One decide so serve.latency_ms has at least one observation.
    let (status, _) = http_request(addr, "POST", "/decide", &decide_body(&cfg, 0)).unwrap();
    assert_eq!(status, 200);

    let (status, body) = http_request(addr, "GET", "/health", "").unwrap();
    assert_eq!(status, 200);
    let health = Value::parse(&body).unwrap();
    match health.field("status").unwrap() {
        Value::Str(s) => assert_eq!(s, "ok"),
        other => panic!("unexpected status value {other:?}"),
    }
    assert!(body.contains("\"model\""), "health must list registered models: {body}");

    // /metrics speaks Prometheus text exposition (sanitized metric names,
    // TYPE comments, cumulative buckets ending in +Inf).
    let (status, body) = http_request(addr, "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("# TYPE serve_latency_ms histogram"),
        "metrics must expose serve_latency_ms as a histogram: {body}"
    );
    assert!(
        body.contains("serve_batch_size_bucket{le=\"+Inf\"}"),
        "histograms must end in a +Inf bucket: {body}"
    );
    assert!(body.contains("serve_latency_ms_count"), "histogram count line: {body}");
    assert!(body.contains("# TYPE serve_requests counter"), "counter TYPE line: {body}");
    assert!(body.contains("# TYPE serve_queue_depth gauge"), "gauge TYPE line: {body}");
    assert!(body.contains("serve_shed"), "shed counter must be exported: {body}");
    assert!(body.contains("serve_connections"), "connection gauge must be exported: {body}");

    // The JSON snapshot stays available at /metrics.json for tooling that
    // wants the raw structure.
    let (status, body) = http_request(addr, "GET", "/metrics.json", "").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("serve.latency_ms"), "JSON keeps dotted names: {body}");
    assert!(Value::parse(&body).is_ok(), "metrics.json must parse as JSON: {body}");

    // The histogram must be non-empty after a successful decide.
    assert!(ppn_serve::metrics::latency_ms().count() > 0);
    assert!(ppn_serve::metrics::batch_size().count() > 0);
    server.shutdown();
}

#[test]
fn shutdown_is_graceful_and_idempotent_under_drop() {
    let (server, _expected, cfg) = start_server(1);
    let addr = server.addr();
    let (status, _) = http_request(addr, "POST", "/decide", &decide_body(&cfg, 0)).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
    // Post-shutdown the port no longer serves decisions.
    assert!(http_request(addr, "POST", "/decide", &decide_body(&cfg, 0)).is_err());

    // Dropping without an explicit shutdown must also join cleanly.
    let (server2, _expected, _cfg) = start_server(1);
    drop(server2);
}

#[test]
fn shutdown_is_bounded_with_idle_and_slow_loris_connections() {
    let (server, _expected, _cfg) = start_server(0);
    let addr = server.addr();
    // An idle keep-alive connection that finished a request…
    let mut idle = HttpClient::connect(addr).unwrap();
    assert_eq!(idle.request("GET", "/health", "").unwrap().status, 200);
    // …and a slow-loris peer that sent half a request and went quiet. The
    // old thread-per-connection server joined handler threads blocked in
    // read() here and hung until the peer gave up.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"POST /decide HTTP/1.1\r\nConte").unwrap();

    let begin = Instant::now();
    server.shutdown();
    let took = begin.elapsed();
    assert!(
        took < Duration::from_secs(5),
        "shutdown with idle + slow-loris connections must stay bounded, took {took:?}"
    );
    drop(idle);
    drop(loris);
}

#[test]
fn process_batch_coalesces_jobs_into_one_forward_pass() {
    let cfg = small_cfg(3);
    let mut rng = StdRng::seed_from_u64(7);
    let net = PolicyNet::new(Variant::PpnLstm, cfg.clone(), &mut rng);
    let registry = ModelRegistry::new();
    registry.publish("m", net);

    let queue = RequestQueue::new(64);
    let n = 5;
    let mut receivers = Vec::new();
    for salt in 0..n {
        let (window, prev_action) = probe_inputs(&cfg, salt);
        let (tx, rx) = reply_pair();
        queue
            .try_push(QueuedRequest {
                request: DecideRequest { model: "m".to_string(), window, prev_action },
                reply: tx,
                enqueued_at: Instant::now(),
                trace: ppn_obs::TraceContext::inert(),
            })
            .unwrap_or_else(|_| panic!("queue has room"));
        receivers.push(rx);
    }
    assert_eq!(queue.len(), n as usize);
    process_batch(&registry, queue.drain(16));
    assert!(queue.is_empty());
    for rx in receivers {
        let resp = rx.try_take().expect("outcome delivered").unwrap();
        assert_eq!(resp.batch_size, n as usize, "all jobs must share one forward pass");
        let sum: f64 = resp.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights must lie on the simplex: {sum}");
    }
}

#[test]
fn models_endpoint_version_stamping_and_rollback() {
    let (server, expected, cfg, registry) = start_server_with_registry(1, ServeConfig::default());
    let addr = server.addr();
    let mut client = HttpClient::connect(addr).unwrap();
    let want_v1: Vec<u64> = expected[0].iter().map(|w| w.to_bits()).collect();

    // v1 serves, stamped in both the body and the response header.
    let resp = client.request("POST", "/decide", &decide_body(&cfg, 0)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.headers.contains("X-PPN-Model-Version: 1"), "{}", resp.headers);
    let parsed: DecideResponse = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(parsed.model_version, 1);

    // GET /models reports name, live version, swap count, and history.
    let resp = client.request("GET", "/models", "").unwrap();
    assert_eq!(resp.status, 200);
    let v = Value::parse(&resp.body).unwrap();
    let Value::Arr(models) = &v else { panic!("expected array: {}", resp.body) };
    assert_eq!(models.len(), 1);
    match models[0].field("name").unwrap() {
        Value::Str(s) => assert_eq!(s, "model"),
        other => panic!("unexpected name {other:?}"),
    }
    assert_eq!(models[0].field("live_version").unwrap(), &Value::Num(1.0));
    assert!(resp.body.contains("last_swap_unix_ms"), "{}", resp.body);
    assert!(resp.body.contains("history"), "{}", resp.body);

    // Hot-swap a different net into the *running* server: decides flip to
    // v2 with no restart, and the swap is metered.
    let swaps_before = ppn_serve::metrics::model_swaps().get();
    let mut rng = StdRng::seed_from_u64(1234);
    let v2 = registry.publish("model", PolicyNet::new(Variant::PpnLstm, cfg.clone(), &mut rng));
    assert_eq!(v2, 2);
    assert!(ppn_serve::metrics::model_swaps().get() > swaps_before);
    let resp = client.request("POST", "/decide", &decide_body(&cfg, 0)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.headers.contains("X-PPN-Model-Version: 2"), "{}", resp.headers);
    let parsed: DecideResponse = serde_json::from_str(&resp.body).unwrap();
    let got_v2: Vec<u64> = parsed.weights.iter().map(|w| w.to_bits()).collect();
    assert_ne!(got_v2, want_v1, "a differently-seeded net must decide differently");

    // POST /rollback restores v1; decides are bit-identical to before.
    let resp = client.request("POST", "/rollback", r#"{"model":"model","version":1}"#).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"live_version\":1"), "{}", resp.body);
    let resp = client.request("POST", "/decide", &decide_body(&cfg, 0)).unwrap();
    assert!(resp.headers.contains("X-PPN-Model-Version: 1"), "{}", resp.headers);
    let parsed: DecideResponse = serde_json::from_str(&resp.body).unwrap();
    let got: Vec<u64> = parsed.weights.iter().map(|w| w.to_bits()).collect();
    assert_eq!(got, want_v1, "rollback must restore the exact v1 network");

    // Unknown versions 404; wrong methods 405.
    let resp = client.request("POST", "/rollback", r#"{"model":"model","version":99}"#).unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);
    let (status, _) = http_request(addr, "POST", "/models", "{}").unwrap();
    assert_eq!(status, 405);
    let (status, _) = http_request(addr, "GET", "/rollback", "").unwrap();
    assert_eq!(status, 405);
    server.shutdown();
}

#[test]
fn hot_swap_mid_soak_zero_failures_and_pinned_bit_identity() {
    // Satellite 4: concurrent /decide soak across live hot-swaps. Every
    // response must succeed, and every row must be bit-identical to the
    // *pinned* version's direct act_batch — proof nobody observed a torn
    // or half-swapped model.
    let (server, _expected, cfg, registry) = start_server_with_registry(0, ServeConfig::default());
    let addr = server.addr();
    let body = decide_body(&cfg, 0);
    let (window, prev) = probe_inputs(&cfg, 0);
    let soakers = 4;
    let rounds = 25;
    let results = ppn_tensor::par::with_threads(soakers + 1, || {
        ppn_tensor::par::par_map(soakers + 1, |w| {
            if w == 0 {
                // The swapper: publish fresh nets while decides are in flight.
                for s in 0..4u64 {
                    std::thread::sleep(Duration::from_millis(4));
                    let mut rng = StdRng::seed_from_u64(100 + s);
                    let net = PolicyNet::new(Variant::PpnLstm, cfg.clone(), &mut rng);
                    registry.publish("model", net);
                }
                return Vec::new();
            }
            let mut client = HttpClient::connect(addr).unwrap();
            (0..rounds)
                .map(|_| {
                    let resp = client.request("POST", "/decide", &body).unwrap();
                    (resp.status, resp.body, resp.headers)
                })
                .collect::<Vec<_>>()
        })
    });

    let mut versions = std::collections::BTreeSet::new();
    for outcomes in &results {
        for (status, body, headers) in outcomes {
            assert_eq!(*status, 200, "no decide may fail across a swap: {body}");
            let parsed: DecideResponse = serde_json::from_str(body).unwrap();
            assert!(
                headers.contains(&format!("X-PPN-Model-Version: {}", parsed.model_version)),
                "header/body version mismatch: {headers}"
            );
            let pinned = registry
                .resolve_version("model", parsed.model_version)
                .expect("every served version must still be retained");
            let direct =
                pinned.net().act_batch(std::slice::from_ref(&window), std::slice::from_ref(&prev));
            let got: Vec<u64> = parsed.weights.iter().map(|w| w.to_bits()).collect();
            let want: Vec<u64> = direct[0].iter().map(|w| w.to_bits()).collect();
            assert_eq!(got, want, "row not bit-identical to pinned v{}", parsed.model_version);
            versions.insert(parsed.model_version);
        }
    }
    assert_eq!(registry.live_version("model"), Some(5), "4 swaps on top of v1");
    assert!(!versions.is_empty());
    server.shutdown();
}

#[test]
fn batcher_skips_jobs_whose_client_disconnected() {
    let cfg = small_cfg(3);
    let mut rng = StdRng::seed_from_u64(9);
    let net = PolicyNet::new(Variant::PpnLstm, cfg.clone(), &mut rng);
    let registry = ModelRegistry::new();
    registry.publish("m", net);

    let cancelled_before = ppn_serve::metrics::cancelled().get();
    let mut jobs = Vec::new();
    let mut kept = Vec::new();
    for salt in 0..4u64 {
        let (window, prev_action) = probe_inputs(&cfg, salt);
        let (tx, rx) = reply_pair();
        jobs.push(QueuedRequest {
            request: DecideRequest { model: "m".to_string(), window, prev_action },
            reply: tx,
            enqueued_at: Instant::now(),
            trace: ppn_obs::TraceContext::inert(),
        });
        // Abandon the odd salts' receivers: their clients are gone.
        if salt % 2 == 0 {
            kept.push(rx);
        }
    }
    process_batch(&registry, jobs);
    for rx in kept {
        let resp = rx.try_take().expect("connected jobs must still be answered").unwrap();
        // batch_size proves the abandoned jobs were dropped *before* the
        // forward pass, not computed and then thrown away.
        assert_eq!(resp.batch_size, 2, "only the 2 connected jobs may enter the batch");
    }
    assert!(ppn_serve::metrics::cancelled().get() >= cancelled_before + 2);
}
