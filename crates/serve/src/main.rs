//! Standalone `ppn-serve` binary.
//!
//! ```text
//! ppn-serve [--addr HOST:PORT] [--model NAME=CHECKPOINT.json]...
//! ```
//!
//! With no `--model` flags the server starts with a freshly-initialised
//! (untrained) demo PPN-LSTM under the name `demo`, so the HTTP surface can
//! be exercised without a training run. Press Enter (or send EOF + SIGTERM)
//! to stop; an interactive Enter performs a graceful shutdown.
//!
//! Admission control is tuned through the environment:
//! `PPN_SERVE_QUEUE_CAP` (bounded decision queue, overflow sheds with 429),
//! `PPN_SERVE_MAX_CONNS` (connection limit, overflow refused with 503), and
//! `PPN_SERVE_IDLE_MS` (idle keep-alive reap timeout).
#![forbid(unsafe_code)]

use ppn_core::config::NetConfig;
use ppn_core::ppn::{PolicyNet, Variant};
use ppn_serve::{ModelRegistry, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn parse_args() -> Result<(ServeConfig, Vec<(String, String)>), String> {
    let mut cfg = ServeConfig::from_env();
    let mut models = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                cfg.addr = args.next().ok_or("--addr needs HOST:PORT")?;
            }
            "--model" => {
                let spec = args.next().ok_or("--model needs NAME=PATH")?;
                let (name, path) =
                    spec.split_once('=').ok_or(format!("bad --model spec `{spec}`"))?;
                models.push((name.to_string(), path.to_string()));
            }
            "--help" | "-h" => {
                return Err("usage: ppn-serve [--addr HOST:PORT] [--model NAME=PATH]...".into())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((cfg, models))
}

fn main() {
    ppn_obs::init_from_env();
    let (mut cfg, models) = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if cfg.addr == "127.0.0.1:0" {
        // A standalone server wants a stable default port, unlike the
        // ephemeral-port tests.
        cfg.addr = "127.0.0.1:7878".to_string();
    }

    let registry = std::sync::Arc::new(ModelRegistry::new());
    for (name, path) in models {
        if let Err(e) = registry.load_checkpoint(&name, &path) {
            eprintln!("failed to load model '{name}' from {path}: {e}");
            std::process::exit(1);
        }
    }
    if registry.is_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = PolicyNet::new(Variant::PpnLstm, NetConfig::paper(4), &mut rng);
        ppn_obs::obs_info!("serve: no --model given, registering untrained demo net (4 assets)");
        registry.publish("demo", net);
    }

    let server = match Server::start(registry, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start server: {e}");
            std::process::exit(1);
        }
    };
    println!("ppn-serve listening on http://{} (Enter to stop)", server.addr());

    let mut line = String::new();
    match std::io::stdin().read_line(&mut line) {
        // Interactive Enter (or any input): graceful shutdown.
        Ok(n) if n > 0 => {
            server.shutdown();
        }
        // EOF (piped/daemonised stdin): serve until the process is killed.
        _ => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
}
