//! HTTP/1.1 framing and the per-connection state machine driven by the
//! event loop. The workspace is offline, so no external HTTP stack is
//! available; this keeps the wire format auditable.
//!
//! Server side: [`parse_request`] is an *incremental* parser over a growing
//! byte buffer (returns `Ok(None)` until one full request is buffered,
//! enforcing the head/body caps exactly), and [`Conn`] owns one
//! non-blocking socket plus its read buffer, pipelined response slots, and
//! write buffer. Responses always leave in request order, keep-alive is the
//! HTTP/1.1 default (honouring `Connection: close` and HTTP/1.0
//! semantics), and every in-flight `/decide` slot carries its own deadline
//! so a stuck decision becomes a `504` instead of a wedged connection.
//!
//! Client side: [`http_request`] stays the blocking one-shot helper
//! (`Connection: close`) and [`HttpClient`] is a persistent keep-alive
//! client able to pipeline, used by the e2e tests and the `serve_probe`
//! soak bench.

use crate::queue::ReplyReceiver;
use crate::{error_json, metrics};
use ppn_obs::TraceSpan;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Hard cap on request-head bytes, including the `\r\n\r\n` terminator
/// (enforced exactly: a head that would exceed this is refused before any
/// further read).
pub const MAX_HEAD: usize = 16 * 1024;
/// Hard cap on body bytes (from `Content-Length`, checked before the body
/// is buffered).
pub const MAX_BODY: usize = 8 * 1024 * 1024;
/// Most unanswered pipelined requests a single connection may have in
/// flight before the event loop stops reading from it (backpressure).
pub const MAX_PIPELINE: usize = 128;

/// A parsed inbound request.
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), uppercased by convention.
    pub method: String,
    /// Request target path, e.g. `/decide`.
    pub path: String,
    /// Raw body bytes (`Content-Length`-framed).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after this exchange
    /// (HTTP/1.1 default true, `Connection: close` or HTTP/1.0 false).
    pub keep_alive: bool,
}

fn proto_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Tries to parse one complete HTTP/1.1 request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a full head+body is
/// buffered (`consumed` bytes belong to it; any remainder is the next
/// pipelined request), `Ok(None)` when more bytes are needed, and `Err`
/// on a malformed or cap-violating request (the connection cannot resync
/// and must close after answering 400).
pub fn parse_request(buf: &[u8]) -> io::Result<Option<(HttpRequest, usize)>> {
    let window = &buf[..buf.len().min(MAX_HEAD)];
    let Some(head_end) = find_head_end(window) else {
        // No terminator within the cap: either wait for more bytes or, if
        // the cap is already saturated, refuse — exactly at MAX_HEAD, never
        // a chunk beyond it.
        if buf.len() >= MAX_HEAD {
            return Err(proto_err("request head too large"));
        }
        return Ok(None);
    };
    let head =
        std::str::from_utf8(&buf[..head_end]).map_err(|_| proto_err("non-utf8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() {
        return Err(proto_err("malformed request line"));
    }
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
    // Connection header overrides either way.
    let mut keep_alive = !version.eq_ignore_ascii_case("HTTP/1.0");
    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            let k = k.trim();
            let v = v.trim();
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.parse().map_err(|_| proto_err("unparseable content-length"))?;
            } else if k.eq_ignore_ascii_case("connection") {
                if v.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if v.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(proto_err("request body too large"));
    }
    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    // Exactly content_length bytes belong to this request — trailing bytes
    // stay in the buffer as the next pipelined request, never truncated.
    let body = buf[body_start..total].to_vec();
    Ok(Some((HttpRequest { method, path, body, keep_alive }, total)))
}

/// Reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

/// Renders a complete response with explicit `Content-Type`, optional
/// extra header lines (e.g. `Retry-After: 1`), and the keep-alive
/// decision encoded in the `Connection` header.
pub fn format_response(
    status: u16,
    content_type: &str,
    extra_headers: &[&str],
    body: &str,
    keep_alive: bool,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason(status),
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Writes a complete JSON response (`Connection: close`) and flushes the
/// stream — the blocking-path helper kept for tools and tests.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write_response_typed(stream, status, "application/json", body)
}

/// Writes a complete response with an explicit `Content-Type`
/// (`Connection: close`) and flushes.
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    stream.write_all(&format_response(status, content_type, &[], body, false))?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// Per-connection state machine
// ---------------------------------------------------------------------------

/// An in-flight `/decide` awaiting its batched outcome.
struct WaitingSlot {
    rx: ReplyReceiver,
    started: Instant,
    deadline: Instant,
    /// The request's `serve.request` root span; dropped (ending the span)
    /// when the response is rendered.
    root: TraceSpan,
    keep_alive: bool,
}

/// One pipelined response position: either bytes ready to send or a
/// decision still in flight. Responses leave strictly in request order.
enum Slot {
    Ready { bytes: Vec<u8>, keep_alive: bool },
    Waiting(Box<WaitingSlot>),
}

/// State machine for one client connection owned by the event loop: a
/// non-blocking socket, the growing read buffer, ordered response slots
/// (keep-alive pipelining), and the write buffer.
pub struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    pending: VecDeque<Slot>,
    /// EOF observed on the read side.
    peer_closed: bool,
    /// Stop parsing further requests (a `Connection: close` response is
    /// queued, a parse error poisoned the stream, or shutdown began).
    no_more_requests: bool,
    /// When the oldest bytes of a still-incomplete request arrived; drives
    /// the slow-read (slow-loris) deadline.
    partial_since: Option<Instant>,
    /// Last moment bytes moved in either direction; drives idle reaping.
    last_activity: Instant,
}

impl Conn {
    /// Wraps a freshly accepted stream (switched to non-blocking,
    /// `TCP_NODELAY` for small-response latency).
    pub fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        // Nagle off: responses are small JSON bodies where the 40ms delayed
        // -ACK interaction would dominate latency. Best effort.
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            pending: VecDeque::new(),
            peer_closed: false,
            no_more_requests: false,
            partial_since: None,
            last_activity: ppn_obs::clock::now(),
        })
    }

    /// The underlying socket, for selector registration.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads until `WouldBlock`/EOF, growing the read buffer. Returns `Err`
    /// only on fatal transport errors (caller drops the connection).
    pub fn fill(&mut self) -> io::Result<()> {
        if self.saturated() || self.no_more_requests {
            return Ok(());
        }
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    return Ok(());
                }
                Ok(n) => {
                    if self.read_buf.is_empty() {
                        self.partial_since = Some(ppn_obs::clock::now());
                    }
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = ppn_obs::clock::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Pulls the next complete request out of the read buffer, if one is
    /// fully buffered. `Err` means the stream is unparseable (the caller
    /// answers 400 and marks the connection for close).
    pub fn next_request(&mut self) -> io::Result<Option<HttpRequest>> {
        if self.no_more_requests || self.saturated() {
            return Ok(None);
        }
        match parse_request(&self.read_buf)? {
            Some((req, consumed)) => {
                self.read_buf.drain(..consumed);
                self.partial_since =
                    if self.read_buf.is_empty() { None } else { Some(ppn_obs::clock::now()) };
                if !req.keep_alive {
                    // Everything after a Connection: close request is
                    // ignored by contract.
                    self.no_more_requests = true;
                }
                Ok(Some(req))
            }
            None => Ok(None),
        }
    }

    /// Queues an already-rendered response at the next pipeline position.
    pub fn push_ready(&mut self, bytes: Vec<u8>, keep_alive: bool) {
        self.pending.push_back(Slot::Ready { bytes, keep_alive });
    }

    /// Queues an in-flight `/decide` at the next pipeline position; the
    /// outcome (or `deadline` expiring into a 504) fills it later.
    pub fn push_waiting(
        &mut self,
        rx: ReplyReceiver,
        started: Instant,
        deadline: Instant,
        root: TraceSpan,
        keep_alive: bool,
    ) {
        self.pending.push_back(Slot::Waiting(Box::new(WaitingSlot {
            rx,
            started,
            deadline,
            root,
            keep_alive,
        })));
    }

    /// Resolves finished/timed-out decision slots, moves ordered ready
    /// responses into the write buffer, and writes as much as the socket
    /// accepts. Fatal transport errors bubble up (caller drops the conn).
    pub fn pump(&mut self, now: Instant) -> io::Result<()> {
        // 1. Resolve Waiting slots anywhere in the pipeline: an outcome
        //    that arrived, or a deadline that passed (504 — dropping the
        //    receiver cancels the batcher job).
        for slot in self.pending.iter_mut() {
            let Slot::Waiting(w) = slot else { continue };
            if let Some(outcome) = w.rx.try_take() {
                let _respond = w.root.context().child("serve.respond");
                metrics::latency_ms().observe(ms_between(w.started, now));
                let (status, body, model_version) = match outcome {
                    Ok(resp) => {
                        let version = resp.model_version;
                        match serde_json::to_string(&resp) {
                            Ok(body) => (200, body, Some(version)),
                            Err(e) => {
                                metrics::errors().inc();
                                (
                                    500,
                                    error_json(&format!("response serialization failed: {e}")),
                                    None,
                                )
                            }
                        }
                    }
                    // Routing/validation errors were counted by the batcher.
                    Err(e) => (e.status(), error_json(&e.message()), None),
                };
                // Stamp the deciding model version into the response header
                // and the request's trace, so swaps are attributable from
                // either the wire or the flamegraph.
                let version_header = model_version.map(|v| format!("X-PPN-Model-Version: {v}"));
                if let Some(v) = model_version {
                    w.root.context().annotate("model_version", v);
                }
                let extra: Vec<&str> = version_header.as_deref().into_iter().collect();
                let keep_alive = w.keep_alive;
                let bytes = format_response(status, "application/json", &extra, &body, keep_alive);
                *slot = Slot::Ready { bytes, keep_alive };
            } else if now >= w.deadline {
                metrics::errors().inc();
                metrics::latency_ms().observe(ms_between(w.started, now));
                let keep_alive = w.keep_alive;
                let bytes = format_response(
                    504,
                    "application/json",
                    &[],
                    &error_json("decision timed out"),
                    keep_alive,
                );
                *slot = Slot::Ready { bytes, keep_alive };
            }
        }
        // 2. Move the ready prefix into the write buffer, preserving
        //    request order.
        while let Some(Slot::Ready { .. }) = self.pending.front() {
            let Some(Slot::Ready { bytes, keep_alive }) = self.pending.pop_front() else {
                break;
            };
            self.write_buf.extend_from_slice(&bytes);
            if !keep_alive {
                self.no_more_requests = true;
            }
        }
        // 3. Write until the socket pushes back.
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "peer stopped")),
                Ok(n) => {
                    self.written += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
        }
        Ok(())
    }

    /// Applies the slow-read deadline: a request that has been arriving in
    /// fragments for longer than `read_timeout` is answered `408` and the
    /// connection marked for close. Returns true if it fired.
    pub fn check_read_deadline(&mut self, now: Instant, read_timeout: std::time::Duration) -> bool {
        let Some(since) = self.partial_since else { return false };
        if now.duration_since(since) < read_timeout {
            return false;
        }
        metrics::requests().inc();
        metrics::errors().inc();
        metrics::latency_ms().observe(ms_between(since, now));
        let body = error_json("request header/body read timed out");
        self.push_ready(format_response(408, "application/json", &[], &body, false), false);
        self.read_buf.clear();
        self.partial_since = None;
        self.no_more_requests = true;
        true
    }

    /// True when the connection has been completely idle (no buffered
    /// bytes, no in-flight work) for longer than `idle_timeout`.
    pub fn idle_expired(&self, now: Instant, idle_timeout: std::time::Duration) -> bool {
        self.pending.is_empty()
            && self.read_buf.is_empty()
            && self.write_buf.len() == self.written
            && now.duration_since(self.last_activity) >= idle_timeout
    }

    /// Stops parsing new requests (shutdown); in-flight slots still resolve
    /// and flush.
    pub fn begin_shutdown(&mut self) {
        self.no_more_requests = true;
    }

    /// True when unanswered pipelined requests hit [`MAX_PIPELINE`] — the
    /// event loop stops reading from this connection until slots drain.
    pub fn saturated(&self) -> bool {
        self.pending.len() >= MAX_PIPELINE
    }

    /// Whether the event loop should keep READABLE interest registered.
    pub fn wants_read(&self) -> bool {
        !self.peer_closed && !self.no_more_requests && !self.saturated()
    }

    /// Whether unflushed response bytes are waiting on socket writability.
    pub fn wants_write(&self) -> bool {
        self.written < self.write_buf.len()
    }

    /// True when at least one `/decide` outcome is still in flight.
    pub fn has_inflight(&self) -> bool {
        self.pending.iter().any(|s| matches!(s, Slot::Waiting(_)))
    }

    /// True when the connection is finished and should be dropped: all
    /// responses flushed and either side has decided to close.
    pub fn finished(&self) -> bool {
        let flushed = self.pending.is_empty() && self.write_buf.len() == self.written;
        flushed && (self.peer_closed || self.no_more_requests)
    }
}

/// Milliseconds between two instants (saturating at 0 for out-of-order
/// clock reads).
fn ms_between(start: Instant, end: Instant) -> f64 {
    end.saturating_duration_since(start).as_secs_f64() * 1e3
}

// ---------------------------------------------------------------------------
// Blocking clients (tests, tools, soak bench)
// ---------------------------------------------------------------------------

/// Blocking one-shot client: sends `method path` with a JSON `body` over a
/// fresh `Connection: close` connection and returns `(status, body)`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| proto_err("malformed status line"))?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

/// Blocking persistent keep-alive client: one TCP connection carrying many
/// requests, with optional pipelining ([`HttpClient::send`] several times,
/// then [`HttpClient::recv`] the responses in order).
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// One parsed client-side response.
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// Raw header block (for asserting on headers like `Retry-After`).
    pub headers: String,
}

impl HttpClient {
    /// Opens a persistent connection to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(HttpClient { stream, buf: Vec::new() })
    }

    /// Writes one keep-alive request without waiting for the response.
    pub fn send(&mut self, method: &str, path: &str, body: &str) -> io::Result<()> {
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(req.as_bytes())
    }

    /// Blocks until one complete response is read, consuming it from the
    /// connection (pipelined successors stay buffered for the next call).
    pub fn recv(&mut self) -> io::Result<HttpResponse> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(head_end) = find_head_end(&self.buf) {
                let headers = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
                let status: u16 = headers
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| proto_err("malformed response status line"))?;
                let content_length: usize = headers
                    .split("\r\n")
                    .find_map(|l| {
                        let (k, v) = l.split_once(':')?;
                        k.trim().eq_ignore_ascii_case("content-length").then(|| v.trim().parse())
                    })
                    .transpose()
                    .map_err(|_| proto_err("unparseable response content-length"))?
                    .unwrap_or(0);
                let total = head_end + 4 + content_length;
                if self.buf.len() >= total {
                    let body = String::from_utf8_lossy(&self.buf[head_end + 4..total]).to_string();
                    self.buf.drain(..total);
                    return Ok(HttpResponse { status, body, headers });
                }
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(proto_err("connection closed mid-response"));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Send + recv one request/response pair.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.send(method, path, body)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req_bytes(body: &str, extra_headers: &str) -> Vec<u8> {
        format!(
            "POST /decide HTTP/1.1\r\nHost: t\r\n{extra_headers}Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    #[test]
    fn parser_waits_for_split_crlf_across_chunks() {
        // Feed the request byte by byte: the parser must return None at
        // every prefix — including splits inside the \r\n\r\n terminator —
        // and parse exactly once at the end.
        let raw = req_bytes("{\"x\":1}", "");
        for cut in 1..raw.len() {
            assert!(
                parse_request(&raw[..cut]).expect("prefix must not error").is_none(),
                "cut at {cut} must be incomplete"
            );
        }
        let (req, consumed) = parse_request(&raw).unwrap().expect("full request parses");
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/decide");
        assert_eq!(req.body, b"{\"x\":1}");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parser_handles_zero_content_length_and_missing_header() {
        let raw = b"GET /health HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n";
        let (req, consumed) = parse_request(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert!(req.body.is_empty());

        let raw = b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n";
        let (req, consumed) = parse_request(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert!(req.body.is_empty(), "missing content-length means empty body");
    }

    #[test]
    fn parser_refuses_huge_content_length_before_buffering() {
        let raw =
            format!("POST /decide HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(parse_request(raw.as_bytes()).is_err());
        // Unparseable lengths are refused too.
        let raw = b"POST /decide HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
        assert!(parse_request(raw).is_err());
    }

    #[test]
    fn parser_enforces_head_cap_exactly() {
        // A head that never terminates: fine below MAX_HEAD, refused at it.
        let mut raw = b"POST /decide HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.resize(MAX_HEAD - 1, b'a');
        assert!(parse_request(&raw).expect("below cap still incomplete").is_none());
        raw.resize(MAX_HEAD, b'a');
        assert!(parse_request(&raw).is_err(), "cap must bind exactly at MAX_HEAD");
        // A terminated head within the cap parses even with more bytes
        // appended after it.
        let ok = req_bytes("xy", "");
        let mut with_extra = ok.clone();
        with_extra.extend_from_slice(&vec![b'z'; 4096]);
        let (_, consumed) = parse_request(&with_extra).unwrap().unwrap();
        assert_eq!(consumed, ok.len());
    }

    #[test]
    fn parser_leaves_pipelined_bytes_untouched() {
        let first = req_bytes("{\"n\":1}", "");
        let second = req_bytes("{\"n\":22}", "");
        let mut buf = first.clone();
        buf.extend_from_slice(&second);
        let (req1, c1) = parse_request(&buf).unwrap().unwrap();
        assert_eq!(c1, first.len());
        assert_eq!(req1.body, b"{\"n\":1}", "body must not swallow pipelined bytes");
        let (req2, c2) = parse_request(&buf[c1..]).unwrap().unwrap();
        assert_eq!(c2, second.len());
        assert_eq!(req2.body, b"{\"n\":22}");
    }

    #[test]
    fn parser_connection_and_version_semantics() {
        let (req, _) = parse_request(&req_bytes("x", "Connection: close\r\n")).unwrap().unwrap();
        assert!(!req.keep_alive);
        let raw = b"GET /health HTTP/1.0\r\nHost: t\r\n\r\n";
        let (req, _) = parse_request(raw).unwrap().unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        let raw = b"GET /health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let (req, _) = parse_request(raw).unwrap().unwrap();
        assert!(req.keep_alive, "explicit keep-alive overrides the 1.0 default");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_request(b"\r\n\r\n").is_err(), "empty request line");
        assert!(parse_request(b"ONLYMETHOD\r\n\r\n").is_err(), "missing path");
        let mut nonutf8 = b"POST /p HTTP/1.1\r\nX: ".to_vec();
        nonutf8.extend_from_slice(&[0xff, 0xfe]);
        nonutf8.extend_from_slice(b"\r\n\r\n");
        assert!(parse_request(&nonutf8).is_err(), "non-utf8 head");
    }

    #[test]
    fn format_response_encodes_connection_and_extra_headers() {
        let out = format_response(429, "application/json", &["Retry-After: 1"], "{}", true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        let out = format_response(200, "text/plain", &[], "hi", false);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nhi"), "{text}");
    }
}
