//! Minimal HTTP/1.1 framing over `std::net` — exactly what the JSON API
//! needs (one request per connection, `Connection: close` semantics) and
//! nothing more. The workspace is offline, so no external HTTP stack is
//! available; this keeps the wire format auditable in ~150 lines.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Hard cap on request-head bytes (the server runs on trusted networks;
/// this guards against accidents, not adversaries).
const MAX_HEAD: usize = 16 * 1024;
/// Hard cap on body bytes.
const MAX_BODY: usize = 8 * 1024 * 1024;

/// A parsed inbound request.
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), uppercased by convention.
    pub method: String,
    /// Request target path, e.g. `/decide`.
    pub path: String,
    /// Raw body bytes (`Content-Length`-framed).
    pub body: Vec<u8>,
}

fn proto_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one HTTP/1.1 request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> io::Result<HttpRequest> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(proto_err("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(proto_err("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head =
        std::str::from_utf8(&buf[..head_end]).map_err(|_| proto_err("non-utf8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(proto_err("malformed request line"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length =
                    v.trim().parse().map_err(|_| proto_err("unparseable content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(proto_err("request body too large"));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(proto_err("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(HttpRequest { method, path, body })
}

/// Reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

/// Writes a complete JSON response and flushes the stream.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write_response_typed(stream, status, "application/json", body)
}

/// Writes a complete response with an explicit `Content-Type` (the
/// Prometheus `/metrics` exposition is text, not JSON) and flushes.
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Blocking one-shot client: sends `method path` with a JSON `body` and
/// returns `(status, response body)`. Used by the e2e tests and the
/// `serve_probe` load generator.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| proto_err("malformed status line"))?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}
