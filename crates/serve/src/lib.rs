#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # ppn-serve
//!
//! Micro-batching inference server for trained Portfolio Policy Networks:
//! the live counterpart of the offline backtester, exposing the batch-first
//! `Policy` decision path over HTTP.
//!
//! ## Architecture
//!
//! ```text
//!                 ┌────────────── event-loop thread (epoll) ──────────────┐
//! client ──TCP──▶ │ accept (≤max_conns, else 503)                        │
//! client ──TCP──▶ │ per-conn state machines: keep-alive + pipelining,    │
//!                 │ read/write deadlines, idle reaping                   │
//!                 │   POST /decide ──▶ bounded RequestQueue ── full? 429 │
//!                 └──────────────────────────│───────────────────────────┘
//!                                            │ drain(≤max_batch) + condvar wake
//!                                            ▼
//!                                     batcher thread ── act_batch (one forward
//!                                            │          pass on the ppn_tensor::par
//!                                            │          pool; disconnected jobs
//!                                            │          skipped pre-forward)
//! client ◀── ordered pipelined responses ◀───┘  (one-shot reply slots + waker)
//! ```
//!
//! Exactly **two** threads per server regardless of connection count: the
//! epoll event loop (via the vendored `mio` readiness shim) and the
//! batcher. Overload degrades by *shedding* — a full decision queue
//! answers `429 Too Many Requests` with `Retry-After`, a full connection
//! table answers `503` — never by unbounded queueing.
//!
//! Concurrent requests that arrive within a batching window are coalesced
//! into **one** batched forward pass ([`ppn_core::ppn::PolicyNet::act_batch`]).
//! Because every tensor kernel keeps its per-row accumulation order
//! independent of the batch dimension, a micro-batched decision is
//! **bit-identical** to the same request served alone — batching is purely a
//! throughput optimisation, never a numerics change (`serve_probe` asserts
//! this end to end).
//!
//! Models come from [`ppn_core::persist`] checkpoints or live publication
//! via the [`registry::ModelRegistry`] — a concurrent *versioned* store:
//! `publish` hot-swaps the live pointer (epoch-style, so in-flight decides
//! keep their [`registry::PinnedModel`] pin and never observe a torn
//! model), `rollback` re-points at a retained older version, and every
//! `/decide` response carries the deciding version in its body and an
//! `X-PPN-Model-Version` header. Telemetry (request counter, queue-depth
//! gauges, `serve.shed` / `serve.cancelled` / `serve.model_swaps` counters,
//! `serve.latency_ms` / `serve.batch_size` histograms) flows through
//! `ppn-obs`. The HTTP layer
//! speaks minimal HTTP/1.1 over non-blocking `std::net` sockets driven by
//! an epoll readiness loop — the workspace is offline, so no external
//! server stack is used (readiness comes from the vendored `mio` shim).
//!
//! When request tracing is sampled in (`PPN_TRACE_SAMPLE=1/N`), each
//! `/decide` request carries a `ppn_obs::TraceContext` from its
//! `serve.request` root span through the queue and the batcher, which emits
//! `serve.queue_wait` / `serve.batch_assemble` / `serve.forward` /
//! `serve.respond` stage spans to the JSONL sink — render them with the
//! `ppn-trace` profiler.
//!
//! ## Endpoints
//!
//! | Route | Method | Body | Response |
//! |---|---|---|---|
//! | `/decide` | POST | [`DecideRequest`] JSON | [`DecideResponse`] JSON |
//! | `/health` | GET | — | `{"status":"ok","models":[…]}` |
//! | `/models` | GET | — | [`registry::ModelStatus`] list JSON |
//! | `/rollback` | POST | [`RollbackRequest`] JSON | `{"model":…,"live_version":…}` |
//! | `/metrics` | GET | — | Prometheus text exposition (v0.0.4) |
//! | `/metrics.json` | GET | — | `ppn_obs::MetricsSnapshot` JSON |

/// Micro-batch execution over drained request groups.
pub mod batcher;
/// HTTP/1.1 framing, the per-connection state machine, blocking clients.
pub mod http;
/// Bounded decision queue and one-shot reply slots.
pub mod queue;
/// Versioned concurrent model store with hot-swap and rollback.
pub mod registry;
/// The epoll event loop, batcher thread, and graceful shutdown.
pub mod server;

pub use registry::{
    ModelRegistry, ModelStatus, ModelVersion, PinnedModel, RegistryError, VersionInfo,
};
pub use server::{ServeConfig, Server};

use ppn_core::ppn::PolicyNet;

/// Body of a `POST /decide` request.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DecideRequest {
    /// Registry name of the model that should decide.
    pub model: String,
    /// Flattened `assets × window × features` price window.
    pub window: Vec<f64>,
    /// Previous portfolio on the `assets + 1` simplex (cash at index 0).
    pub prev_action: Vec<f64>,
}

/// Body of a successful `POST /decide` response.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DecideResponse {
    /// The model that produced the decision.
    pub model: String,
    /// Registry version of the model that produced the decision (also
    /// echoed in the `X-PPN-Model-Version` response header).
    pub model_version: ModelVersion,
    /// Portfolio weights on the `assets + 1` simplex, cash at index 0.
    pub weights: Vec<f64>,
    /// Size of the forward-pass batch this request was coalesced into.
    pub batch_size: usize,
}

/// Body of a `POST /rollback` admin request: re-point a model's live
/// pointer at a retained older version.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RollbackRequest {
    /// Registry name of the model to roll back.
    pub model: String,
    /// The retained version to restore.
    pub version: ModelVersion,
}

/// Why a decision request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The requested model name is not in the registry.
    UnknownModel(String),
    /// The request body does not fit the model's input contract.
    BadRequest(String),
    /// The server is draining and no longer decides.
    ShuttingDown,
}

impl ServeError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::UnknownModel(_) => 404,
            ServeError::BadRequest(_) => 400,
            ServeError::ShuttingDown => 503,
        }
    }

    /// Human-readable description, used as the JSON error message.
    pub fn message(&self) -> String {
        match self {
            ServeError::UnknownModel(name) => format!("unknown model '{name}'"),
            ServeError::BadRequest(why) => why.clone(),
            ServeError::ShuttingDown => "server is shutting down".to_string(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for ServeError {}

/// Checks a request against `net`'s input contract before it may enter a
/// batch: exact window / previous-action lengths and finite values. This is
/// what keeps malformed requests from panicking the batched forward pass.
pub fn validate_request(net: &PolicyNet, req: &DecideRequest) -> Result<(), ServeError> {
    let cfg = &net.cfg;
    let want = cfg.assets * cfg.window * cfg.features;
    if req.window.len() != want {
        return Err(ServeError::BadRequest(format!(
            "window has {} values, model '{}' expects {want} (assets {} × window {} × features {})",
            req.window.len(),
            req.model,
            cfg.assets,
            cfg.window,
            cfg.features
        )));
    }
    if req.prev_action.len() != cfg.assets + 1 {
        return Err(ServeError::BadRequest(format!(
            "prev_action has {} values, model '{}' expects {} (assets + cash)",
            req.prev_action.len(),
            req.model,
            cfg.assets + 1
        )));
    }
    if req.window.iter().any(|v| !v.is_finite()) {
        return Err(ServeError::BadRequest("window contains non-finite values".to_string()));
    }
    if req.prev_action.iter().any(|v| !v.is_finite()) {
        return Err(ServeError::BadRequest("prev_action contains non-finite values".to_string()));
    }
    Ok(())
}

/// Builds the `{"error": …}` JSON body for an error response.
pub fn error_json(msg: &str) -> String {
    let mut s = serde::Ser::new();
    s.begin_obj();
    s.key("error");
    s.write_str(msg);
    s.end_obj();
    s.finish()
}

/// The server's `ppn-obs` instruments, shared by the event loop, the
/// batcher, and `serve_probe` (handles are process-global by name).
pub mod metrics {
    /// Batch-size histogram bounds.
    pub const BATCH_BOUNDS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

    /// Total HTTP requests parsed (any route).
    pub fn requests() -> ppn_obs::metrics::Counter {
        ppn_obs::counter("serve.requests")
    }

    /// Requests that ended in an error response.
    pub fn errors() -> ppn_obs::metrics::Counter {
        ppn_obs::counter("serve.errors")
    }

    /// Work refused by admission control: `429` queue-full sheds and `503`
    /// connection-limit refusals.
    pub fn shed() -> ppn_obs::metrics::Counter {
        ppn_obs::counter("serve.shed")
    }

    /// Queued jobs skipped by the batcher because their reply slot was
    /// already abandoned (client gone / request timed out) — forward-pass
    /// compute saved.
    pub fn cancelled() -> ppn_obs::metrics::Counter {
        ppn_obs::counter("serve.cancelled")
    }

    /// Live-pointer changes in the model registry: overwrite publishes and
    /// rollbacks (a name's initial publication does not count).
    pub fn model_swaps() -> ppn_obs::metrics::Counter {
        ppn_obs::counter("serve.model_swaps")
    }

    /// Currently open client connections (level gauge).
    pub fn connections() -> ppn_obs::metrics::Gauge {
        ppn_obs::gauge("serve.connections")
    }

    /// Current decision-queue depth (level gauge: last-written value).
    pub fn queue_depth() -> ppn_obs::metrics::Gauge {
        ppn_obs::gauge("serve.queue_depth")
    }

    /// High-water decision-queue depth since process start (peak gauge).
    pub fn queue_depth_peak() -> ppn_obs::metrics::Gauge {
        ppn_obs::gauge_peak("serve.queue_depth_peak")
    }

    /// End-to-end `/decide` latency (enqueue → reply), milliseconds, on the
    /// shared log-linear latency buckets (1µs–10s, 3 per decade).
    pub fn latency_ms() -> ppn_obs::metrics::Histogram {
        ppn_obs::auto_histogram("serve.latency_ms")
    }

    /// Forward-pass batch sizes assembled by the batcher.
    pub fn batch_size() -> ppn_obs::metrics::Histogram {
        ppn_obs::histogram("serve.batch_size", &BATCH_BOUNDS)
    }
}
