//! Checkpoint-backed model registry: the set of named networks a server
//! instance decides with. Models are immutable once registered (`Arc`
//! snapshots), so the batcher and handlers share them without locking.

use ppn_core::ppn::PolicyNet;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Named collection of live models.
///
/// `BTreeMap` keeps name iteration deterministic, which in turn keeps the
/// batcher's per-model execution order deterministic.
#[derive(Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<PolicyNet>>,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ModelRegistry { models: BTreeMap::new() }
    }

    /// Registers an in-memory network under `name` (replacing any previous
    /// holder of the name).
    pub fn insert(&mut self, name: impl Into<String>, net: PolicyNet) {
        let name = name.into();
        ppn_obs::obs_info!("serve: registered model '{name}'");
        self.models.insert(name, Arc::new(net));
    }

    /// Loads a [`ppn_core::persist`] checkpoint from `path` and registers it
    /// under `name`. Fails with the checkpoint loader's error (bad schema
    /// version, unknown variant, shape mismatch, …).
    pub fn load_checkpoint(
        &mut self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> io::Result<()> {
        let net = PolicyNet::load(path)?;
        self.insert(name, net);
        Ok(())
    }

    /// The model registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<PolicyNet>> {
        self.models.get(name).cloned()
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}
