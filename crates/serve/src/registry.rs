//! Concurrent versioned model store: the set of named networks a server
//! instance decides with, each name carrying a monotonically-versioned
//! history so the streaming updater can hot-swap candidates in and roll
//! them back without interrupting serving.
//!
//! ## Swap semantics (no torn models, no blocking decides)
//!
//! Publishing is an epoch-style pointer swap. A candidate network is fully
//! constructed (and `Arc`-wrapped) *before* the registry's write lock is
//! taken, so the critical section is a pointer store plus history
//! bookkeeping — never a model build, deserialize, or forward pass. Readers
//! take a short read lock only to clone the live `Arc` into a
//! [`PinnedModel`]; the batcher resolves once per batch and holds the pin
//! for the whole forward pass, so an in-flight `/decide` either sees the
//! complete old version or the complete new one, and is never blocked by a
//! concurrent publish for longer than the pointer swap itself.
//!
//! Every live-pointer change after a name's initial publication (overwrite
//! publishes and rollbacks alike) increments the `serve.model_swaps`
//! counter — there is no silent-overwrite path anymore.

use ppn_core::ppn::PolicyNet;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Monotonic per-name version number. Starts at 1 for a name's first
/// publication and never repeats, even across rollbacks (rolling back
/// re-points the live pointer at an old version, it does not renumber).
pub type ModelVersion = u64;

/// How many versions of each model the registry retains by default.
pub const DEFAULT_RETENTION: usize = 8;

/// A version-stamped snapshot of one model, cheap to clone.
///
/// Resolution hands out a pin rather than a bare `Arc` so consumers can
/// stamp the exact version into responses, traces, and bit-identity checks.
/// Holding a pin keeps that version's network alive even after retention
/// evicts it from the history.
#[derive(Clone)]
pub struct PinnedModel {
    name: String,
    version: ModelVersion,
    net: Arc<PolicyNet>,
}

impl std::fmt::Debug for PinnedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedModel")
            .field("name", &self.name)
            .field("version", &self.version)
            .finish_non_exhaustive()
    }
}

impl PinnedModel {
    /// Registry name this pin resolves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pinned version.
    pub fn version(&self) -> ModelVersion {
        self.version
    }

    /// The pinned network.
    pub fn net(&self) -> &Arc<PolicyNet> {
        &self.net
    }
}

/// Why a registry mutation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No model is registered under the given name.
    UnknownModel(String),
    /// The name exists but the requested version is not in its retained
    /// history (never published, or already evicted by retention).
    UnknownVersion {
        /// The model name.
        model: String,
        /// The version that could not be found.
        version: ModelVersion,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownModel(name) => write!(f, "unknown model '{name}'"),
            RegistryError::UnknownVersion { model, version } => {
                write!(f, "model '{model}' has no retained version {version}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// One retained version in a model's history.
#[derive(Clone)]
struct VersionEntry {
    version: ModelVersion,
    net: Arc<PolicyNet>,
    published_unix_ms: u64,
}

/// Per-name state: the live pointer plus the retained version history.
struct ModelState {
    live_version: ModelVersion,
    live: Arc<PolicyNet>,
    history: VecDeque<VersionEntry>,
    next_version: ModelVersion,
    swaps: u64,
    last_swap_unix_ms: u64,
}

/// Status of one retained version, as reported by `GET /models`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct VersionInfo {
    /// The version number.
    pub version: ModelVersion,
    /// Wall-clock publication time (unix milliseconds).
    pub published_unix_ms: u64,
}

/// Status of one registered model name, as reported by `GET /models`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ModelStatus {
    /// Registry name.
    pub name: String,
    /// The version currently serving `/decide` traffic.
    pub live_version: ModelVersion,
    /// Live-pointer changes since the initial publication (overwrite
    /// publishes + rollbacks).
    pub swaps: u64,
    /// Wall-clock time of the last live-pointer change (unix milliseconds);
    /// the initial publication counts.
    pub last_swap_unix_ms: u64,
    /// Retained history, oldest first.
    pub history: Vec<VersionInfo>,
}

/// Named collection of versioned live models.
///
/// All methods take `&self`: the registry is designed to be shared as an
/// `Arc<ModelRegistry>` between the event loop, the batcher, admin
/// endpoints, and the stream updater. `BTreeMap` keeps name iteration
/// deterministic, which keeps the batcher's per-model execution order
/// deterministic.
pub struct ModelRegistry {
    models: parking_lot::RwLock<BTreeMap<String, ModelState>>,
    retain: usize,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::new()
    }
}

impl ModelRegistry {
    /// Empty registry with [`DEFAULT_RETENTION`] versions of history.
    pub fn new() -> Self {
        ModelRegistry::with_retention(DEFAULT_RETENTION)
    }

    /// Empty registry retaining the last `retain` versions per name
    /// (clamped to at least 1 — the live version is always retained).
    pub fn with_retention(retain: usize) -> Self {
        ModelRegistry { models: parking_lot::RwLock::new(BTreeMap::new()), retain: retain.max(1) }
    }

    /// Publishes `net` as the new live version of `name`, returning the
    /// version it was assigned. The first publication of a name gets
    /// version 1; later ones hot-swap the live pointer (a replaced name
    /// increments `serve.model_swaps`). The swap itself is a pointer store
    /// under a short write lock — in-flight batches keep their pins.
    pub fn publish(&self, name: impl Into<String>, net: PolicyNet) -> ModelVersion {
        self.publish_arc(name, Arc::new(net))
    }

    /// [`ModelRegistry::publish`] for an already-shared network.
    pub fn publish_arc(&self, name: impl Into<String>, net: Arc<PolicyNet>) -> ModelVersion {
        let name = name.into();
        let now_ms = unix_ms();
        let mut models = self.models.write();
        let (version, swapped) = match models.get_mut(&name) {
            Some(state) => {
                let version = state.next_version;
                state.next_version += 1;
                state.live_version = version;
                state.live = Arc::clone(&net);
                state.swaps += 1;
                state.last_swap_unix_ms = now_ms;
                state.history.push_back(VersionEntry { version, net, published_unix_ms: now_ms });
                while state.history.len() > self.retain {
                    state.history.pop_front();
                }
                (version, true)
            }
            None => {
                let mut history = VecDeque::new();
                history.push_back(VersionEntry {
                    version: 1,
                    net: Arc::clone(&net),
                    published_unix_ms: now_ms,
                });
                models.insert(
                    name.clone(),
                    ModelState {
                        live_version: 1,
                        live: net,
                        history,
                        next_version: 2,
                        swaps: 0,
                        last_swap_unix_ms: now_ms,
                    },
                );
                (1, false)
            }
        };
        drop(models);
        if swapped {
            crate::metrics::model_swaps().inc();
            ppn_obs::obs_info!("serve: hot-swapped model '{name}' to v{version}");
        } else {
            ppn_obs::obs_info!("serve: published model '{name}' v{version}");
        }
        version
    }

    /// Re-points `name`'s live pointer at a previously-published `version`
    /// still in the retained history. Counts as a swap. The rolled-back-to
    /// version keeps its number — no renumbering, so `/decide` responses
    /// stamped during the bad interval remain attributable.
    ///
    /// # Errors
    /// [`RegistryError::UnknownModel`] when the name was never published,
    /// [`RegistryError::UnknownVersion`] when the version is not retained.
    pub fn rollback(&self, name: &str, version: ModelVersion) -> Result<(), RegistryError> {
        let now_ms = unix_ms();
        let mut models = self.models.write();
        let state =
            models.get_mut(name).ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        let entry = state
            .history
            .iter()
            .find(|e| e.version == version)
            .ok_or(RegistryError::UnknownVersion { model: name.to_string(), version })?;
        state.live = Arc::clone(&entry.net);
        state.live_version = version;
        state.swaps += 1;
        state.last_swap_unix_ms = now_ms;
        drop(models);
        crate::metrics::model_swaps().inc();
        ppn_obs::obs_warn!("serve: rolled back model '{name}' to v{version}");
        Ok(())
    }

    /// Loads a [`ppn_core::persist`] checkpoint from `path` and publishes it
    /// under `name`. Fails with the checkpoint loader's error (bad schema
    /// version, unknown variant, shape mismatch, …).
    pub fn load_checkpoint(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> io::Result<ModelVersion> {
        let net = PolicyNet::load(path)?;
        Ok(self.publish(name, net))
    }

    /// Resolves `name` to a version-stamped pin of its live network, if
    /// any. The returned [`PinnedModel`] stays valid (and bit-identical)
    /// regardless of later publishes or rollbacks.
    pub fn resolve(&self, name: &str) -> Option<PinnedModel> {
        let models = self.models.read();
        models.get(name).map(|state| PinnedModel {
            name: name.to_string(),
            version: state.live_version,
            net: Arc::clone(&state.live),
        })
    }

    /// Resolves a specific retained version of `name` (history lookups for
    /// bit-identity checks and shadow comparisons).
    pub fn resolve_version(&self, name: &str, version: ModelVersion) -> Option<PinnedModel> {
        let models = self.models.read();
        let state = models.get(name)?;
        let entry = state.history.iter().find(|e| e.version == version)?;
        Some(PinnedModel { name: name.to_string(), version, net: Arc::clone(&entry.net) })
    }

    /// The live network registered under `name`, if any (version-blind
    /// convenience; prefer [`ModelRegistry::resolve`] where the version
    /// matters).
    pub fn get(&self, name: &str) -> Option<Arc<PolicyNet>> {
        self.resolve(name).map(|pin| pin.net)
    }

    /// The version currently serving `name`, if any.
    pub fn live_version(&self, name: &str) -> Option<ModelVersion> {
        self.models.read().get(name).map(|s| s.live_version)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models.read().keys().cloned().collect()
    }

    /// Per-name status report, sorted by name (`GET /models`).
    pub fn status(&self) -> Vec<ModelStatus> {
        let models = self.models.read();
        models
            .iter()
            .map(|(name, state)| ModelStatus {
                name: name.clone(),
                live_version: state.live_version,
                swaps: state.swaps,
                last_swap_unix_ms: state.last_swap_unix_ms,
                history: state
                    .history
                    .iter()
                    .map(|e| VersionInfo {
                        version: e.version,
                        published_unix_ms: e.published_unix_ms,
                    })
                    .collect(),
            })
            .collect()
    }

    /// Number of registered model names.
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }
}

/// Wall-clock unix milliseconds via the workspace clock chokepoint.
fn unix_ms() -> u64 {
    ppn_obs::clock::system_now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_core::config::NetConfig;
    use ppn_core::ppn::Variant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> PolicyNet {
        let cfg = NetConfig { window: 8, lstm_hidden: 4, ..NetConfig::paper(3) };
        PolicyNet::new(Variant::PpnLstm, cfg, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn publish_assigns_monotonic_versions() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.publish("m", net(1)), 1);
        assert_eq!(reg.publish("m", net(2)), 2);
        assert_eq!(reg.publish("m", net(3)), 3);
        assert_eq!(reg.live_version("m"), Some(3));
        assert_eq!(reg.publish("other", net(4)), 1, "versions are per-name");
    }

    #[test]
    fn resolve_pins_survive_later_publishes() {
        let reg = ModelRegistry::new();
        reg.publish("m", net(1));
        let pin = reg.resolve("m").unwrap();
        assert_eq!(pin.version(), 1);
        reg.publish("m", net(2));
        let live = reg.resolve("m").unwrap();
        assert_eq!(live.version(), 2);
        assert!(!Arc::ptr_eq(pin.net(), live.net()), "new version is a different network");
        // The old pin still answers and matches the retained v1 exactly.
        let v1 = reg.resolve_version("m", 1).unwrap();
        assert!(Arc::ptr_eq(pin.net(), v1.net()));
    }

    #[test]
    fn rollback_restores_the_exact_old_network() {
        let reg = ModelRegistry::new();
        reg.publish("m", net(1));
        let v1 = reg.resolve("m").unwrap();
        reg.publish("m", net(2));
        reg.rollback("m", 1).unwrap();
        let live = reg.resolve("m").unwrap();
        assert_eq!(live.version(), 1);
        assert!(Arc::ptr_eq(live.net(), v1.net()));
        // Publishing after a rollback continues the version sequence.
        assert_eq!(reg.publish("m", net(3)), 3);
    }

    #[test]
    fn rollback_errors_are_precise() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.rollback("nope", 1), Err(RegistryError::UnknownModel("nope".into())));
        reg.publish("m", net(1));
        assert_eq!(
            reg.rollback("m", 9),
            Err(RegistryError::UnknownVersion { model: "m".into(), version: 9 })
        );
        // Failed rollbacks change nothing.
        assert_eq!(reg.live_version("m"), Some(1));
    }

    #[test]
    fn retention_evicts_oldest_versions() {
        let reg = ModelRegistry::with_retention(2);
        for s in 1..=4 {
            reg.publish("m", net(s));
        }
        assert!(reg.resolve_version("m", 1).is_none());
        assert!(reg.resolve_version("m", 2).is_none());
        assert!(reg.resolve_version("m", 3).is_some());
        assert!(reg.resolve_version("m", 4).is_some());
        assert_eq!(
            reg.rollback("m", 1),
            Err(RegistryError::UnknownVersion { model: "m".into(), version: 1 })
        );
    }

    #[test]
    fn status_reports_history_and_swaps() {
        let reg = ModelRegistry::new();
        reg.publish("m", net(1));
        reg.publish("m", net(2));
        reg.rollback("m", 1).unwrap();
        let status = reg.status();
        assert_eq!(status.len(), 1);
        let s = &status[0];
        assert_eq!(s.name, "m");
        assert_eq!(s.live_version, 1);
        assert_eq!(s.swaps, 2, "one overwrite publish + one rollback");
        assert!(s.last_swap_unix_ms > 0);
        assert_eq!(s.history.iter().map(|v| v.version).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn concurrent_resolves_across_publishes_never_tear() {
        // Readers hammering resolve() while a writer publishes must only
        // ever observe complete (version, net) pairs whose acts are
        // bit-identical to the retained entry of that version.
        let reg = Arc::new(ModelRegistry::new());
        reg.publish("m", net(1));
        let cfg = reg.resolve("m").unwrap().net().cfg.clone();
        let window: Vec<f64> = (0..cfg.assets * cfg.window * cfg.features)
            .map(|i| 1.0 + (i as f64 % 7.0) * 1e-3)
            .collect();
        let prev = vec![1.0 / (cfg.assets + 1) as f64; cfg.assets + 1];
        let workers = 4;
        let outcomes = ppn_tensor::par::with_threads(workers, || {
            ppn_tensor::par::par_map(workers, |w| {
                if w == 0 {
                    for s in 2..=6 {
                        reg.publish("m", net(s));
                    }
                    return true;
                }
                for _ in 0..40 {
                    let pin = reg.resolve("m").unwrap();
                    let got = pin.net().act(&window, &prev);
                    let want = reg
                        .resolve_version("m", pin.version())
                        .map(|p| p.net().act(&window, &prev));
                    if want != Some(got) {
                        return false;
                    }
                }
                true
            })
        });
        assert!(outcomes.into_iter().all(|ok| ok), "a resolve observed a torn model");
        assert_eq!(reg.live_version("m"), Some(6));
    }
}
