//! Micro-batch execution: turns a drained slice of queued requests into
//! batched forward passes — one [`ppn_core::ppn::PolicyNet::act_batch`]
//! call per model — and routes each outcome back through its reply channel.
//!
//! This module only *computes*; the thread that drives it lives in
//! [`crate::server`] (the `no-thread` lint allowlists only the listener
//! module). The heavy lifting inside `act_batch` runs on the
//! `ppn_tensor::par` worker pool via the tensor kernels, and each output
//! row is bit-identical to a single-request forward pass by the kernels'
//! row-independence guarantee.

use crate::queue::QueuedRequest;
use crate::registry::ModelRegistry;
use crate::{validate_request, DecideResponse, ServeError};
use std::collections::BTreeMap;

/// Executes one drained batch.
///
/// Requests are grouped by model name (`BTreeMap` → deterministic model
/// order), validated against the model's input contract, and decided with a
/// single batched forward pass per group. Invalid or unroutable requests
/// receive their error without poisoning the rest of the batch.
pub fn process_batch(registry: &ModelRegistry, mut jobs: Vec<QueuedRequest>) {
    // Jobs whose reply slot lost its receiver (client hung up, request
    // already answered 504) are dropped *before* the forward pass — no
    // compute is spent on an answer nobody will read.
    jobs.retain(|job| {
        if job.reply.is_disconnected() {
            crate::metrics::cancelled().inc();
            false
        } else {
            true
        }
    });
    if jobs.is_empty() {
        return;
    }
    // Stage boundary shared by every job in this drain: time spent before
    // this point is queue wait, time until the batch tensors are built is
    // assembly. Sampled jobs report these as child spans of their request.
    let drained_at = ppn_obs::clock::now();
    let mut groups: BTreeMap<String, Vec<QueuedRequest>> = BTreeMap::new();
    for job in jobs {
        groups.entry(job.request.model.clone()).or_default().push(job);
    }
    let batch_hist = crate::metrics::batch_size();
    let errors = crate::metrics::errors();
    for (model, group) in groups {
        // One version-stamped pin per group, held across the whole forward
        // pass: a concurrent publish/rollback swaps the live pointer for
        // *later* batches, but every row of this batch is decided by one
        // complete network (epoch-style snapshot isolation).
        let Some(pinned) = registry.resolve(&model) else {
            for job in group {
                errors.inc();
                job.reply.send(Err(ServeError::UnknownModel(model.clone())));
            }
            continue;
        };
        let net = pinned.net();
        let model_version = pinned.version();
        let mut valid = Vec::new();
        for job in group {
            match validate_request(net, &job.request) {
                Ok(()) => valid.push(job),
                Err(e) => {
                    errors.inc();
                    job.reply.send(Err(e));
                }
            }
        }
        if valid.is_empty() {
            continue;
        }
        let windows: Vec<Vec<f64>> = valid.iter().map(|j| j.request.window.clone()).collect();
        let prevs: Vec<Vec<f64>> = valid.iter().map(|j| j.request.prev_action.clone()).collect();
        let batch_size = valid.len();
        batch_hist.observe(batch_size as f64);
        let assembled_at = ppn_obs::clock::now();
        let outputs = {
            let _span = ppn_obs::span!("serve.forward");
            net.act_batch(&windows, &prevs)
        };
        let forwarded_at = ppn_obs::clock::now();
        for job in &valid {
            job.trace.emit_span("serve.queue_wait", job.enqueued_at, drained_at);
            job.trace.emit_span("serve.batch_assemble", drained_at, assembled_at);
            job.trace.emit_span("serve.forward", assembled_at, forwarded_at);
        }
        for (job, weights) in valid.into_iter().zip(outputs) {
            job.reply.send(Ok(DecideResponse {
                model: model.clone(),
                model_version,
                weights,
                batch_size,
            }));
        }
    }
}
