//! The event-driven serving core: a single epoll loop (readiness via the
//! vendored `mio` shim) owning the listener and every connection state
//! machine, plus the batcher thread. This is the **only** ppn-serve module
//! sanctioned to spawn threads (enforced by the ppn-check `no-thread`
//! allowlist): exactly two per server — the event loop and the batcher —
//! regardless of connection count. The batched forward passes the batcher
//! dispatches still run on the `ppn_tensor::par` worker pool via the
//! tensor kernels, so `PPN_THREADS` keeps governing compute parallelism.
//!
//! Admission control happens at two layers: the accept path refuses
//! connections beyond `max_conns` (best-effort `503`), and `/decide`
//! requests that find the bounded [`RequestQueue`] full are shed with
//! `429 Too Many Requests` + `Retry-After` instead of queueing without
//! bound. Connections are keep-alive with pipelining; idle connections are
//! reaped after `idle_timeout`, half-fed requests after `read_timeout`, so
//! shutdown is bounded even with slow-loris peers attached.

use crate::batcher::process_batch;
use crate::http::{format_response, Conn, HttpRequest};
use crate::queue::{reply_pair, QueuedRequest, RequestQueue};
use crate::registry::ModelRegistry;
use crate::{error_json, metrics, DecideRequest, RollbackRequest};
use mio::{Events, Interest, Poll, Token, Waker};
use ppn_obs::{clock, TraceSpan};
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Largest forward-pass batch the batcher will assemble.
    pub max_batch: usize,
    /// Batcher stop-flag recheck slice while waiting on the queue condvar.
    pub poll_interval: Duration,
    /// Extra wait after the first drained request of a batch, letting
    /// concurrent requests coalesce into the same forward pass.
    pub gather_window: Duration,
    /// How long a queued decision may stay unanswered before its slot
    /// resolves to `504` (and the batcher job is cancelled).
    pub request_timeout: Duration,
    /// Bounded decision-queue capacity; overflow is shed with `429`
    /// (`PPN_SERVE_QUEUE_CAP`).
    pub queue_cap: usize,
    /// Most concurrent connections admitted; beyond it, accepts are
    /// refused with a best-effort `503` (`PPN_SERVE_MAX_CONNS`).
    pub max_conns: usize,
    /// Idle keep-alive connections are reaped after this long
    /// (`PPN_SERVE_IDLE_MS`).
    pub idle_timeout: Duration,
    /// A request arriving in fragments for longer than this is answered
    /// `408` and the connection closed (slow-loris guard).
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 32,
            poll_interval: Duration::from_millis(5),
            gather_window: Duration::from_micros(300),
            request_timeout: Duration::from_secs(10),
            queue_cap: 1024,
            max_conns: 1024,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(5),
        }
    }
}

impl ServeConfig {
    /// Defaults with the `PPN_SERVE_*` environment overrides applied
    /// (unparseable values fall back to the default silently — serving
    /// must not fail to start over a typo'd knob).
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Some(cap) = parse_env(std::env::var("PPN_SERVE_QUEUE_CAP").ok()) {
            cfg.queue_cap = cap;
        }
        if let Some(n) = parse_env(std::env::var("PPN_SERVE_MAX_CONNS").ok()) {
            cfg.max_conns = n;
        }
        if let Some(ms) = parse_env(std::env::var("PPN_SERVE_IDLE_MS").ok()) {
            cfg.idle_timeout = Duration::from_millis(ms);
        }
        cfg
    }
}

fn parse_env<T: std::str::FromStr>(raw: Option<String>) -> Option<T> {
    raw.and_then(|s| s.trim().parse().ok())
}

/// Event-loop poll tick: the upper bound on how stale a deadline check
/// (504 / 408 / idle reap) can be. Readiness and batch completions wake
/// the loop immediately; only deadline granularity rides on this.
const TICK: Duration = Duration::from_millis(25);

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
const FIRST_CONN: usize = 2;

/// A running inference server.
///
/// [`Server::shutdown`] (or dropping the handle) stops accepting, lets
/// in-flight decisions finish (bounded by `request_timeout`), closes every
/// connection — idle ones immediately — drains the decision queue, and
/// joins both threads.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stop_batcher: Arc<AtomicBool>,
    waker: Arc<Waker>,
    queue: Arc<RequestQueue>,
    event_loop: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the event loop and the batcher thread, and
    /// returns immediately.
    ///
    /// The registry is taken as a shared `Arc` so callers (the stream
    /// updater, tests, admin tooling) can keep publishing and rolling back
    /// models on the same instance the server decides with — hot-swaps
    /// need no restart.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // Touch every instrument up front so /metrics and shutdown
        // snapshots expose them even before the first request.
        metrics::requests();
        metrics::errors();
        metrics::shed();
        metrics::cancelled();
        metrics::model_swaps();
        metrics::latency_ms();
        metrics::batch_size();
        metrics::queue_depth_peak();
        metrics::connections();
        let queue = Arc::new(RequestQueue::new(cfg.queue_cap));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_batcher = Arc::new(AtomicBool::new(false));

        let poll = Poll::new()?;
        poll.register(&listener, LISTENER, Interest::READABLE)?;
        let waker = Arc::new(Waker::new(&poll, WAKER)?);

        let batcher = {
            let registry = Arc::clone(&registry);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop_batcher);
            let waker = Arc::clone(&waker);
            let cfg = cfg.clone();
            std::thread::spawn(move || loop {
                let mut jobs = queue.drain(cfg.max_batch);
                if jobs.is_empty() {
                    if stop.load(Ordering::SeqCst) {
                        if queue.is_empty() {
                            break;
                        }
                    } else {
                        // Condvar-notified: wakes the instant work arrives;
                        // the timeout slice only bounds stop-flag latency.
                        queue.wait_nonempty(cfg.poll_interval.max(Duration::from_millis(1)));
                    }
                    continue;
                }
                // Micro-batching: give concurrent requests a beat to land,
                // then top the batch up before paying for a forward pass.
                if jobs.len() < cfg.max_batch && !cfg.gather_window.is_zero() {
                    std::thread::sleep(cfg.gather_window);
                    jobs.extend(queue.drain(cfg.max_batch - jobs.len()));
                }
                process_batch(&registry, jobs);
                // Outcomes are in their reply slots: poke the event loop so
                // it writes responses now rather than at the next tick.
                let _ = waker.wake();
            })
        };

        let event_loop = {
            let registry = Arc::clone(&registry);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            let waker = Arc::clone(&waker);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                run_event_loop(poll, listener, &waker, &registry, &queue, &cfg, &stop);
            })
        };
        ppn_obs::obs_info!("serve: listening on {addr} (event loop, queue cap {})", cfg.queue_cap);
        Ok(Server {
            addr,
            stop,
            stop_batcher,
            waker,
            queue,
            event_loop: Some(event_loop),
            batcher: Some(batcher),
        })
    }

    /// The bound socket address (resolves the ephemeral port of `addr: …:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, resolve in-flight decisions
    /// (bounded), close all connections, drain the queue, join threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        // The event loop has exited: every reply slot it owned is dropped,
        // so remaining queue jobs are answered into the void (and skipped
        // by the batcher's disconnect check). Let the batcher drain out.
        self.stop_batcher.store(true, Ordering::SeqCst);
        self.queue.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        ppn_obs::obs_info!("serve: {} shut down", self.addr);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.event_loop.is_some() || self.batcher.is_some() {
            self.stop();
        }
    }
}

/// One registered connection plus the interest currently installed in the
/// selector (so reregistration happens only on change).
struct ConnEntry {
    conn: Conn,
    interest: (bool, bool),
}

/// The event loop body: owns the selector, the listener, and every
/// connection state machine until shutdown completes.
fn run_event_loop(
    poll: Poll,
    listener: TcpListener,
    waker: &Waker,
    registry: &ModelRegistry,
    queue: &RequestQueue,
    cfg: &ServeConfig,
    stop: &AtomicBool,
) {
    let mut conns: BTreeMap<usize, ConnEntry> = BTreeMap::new();
    let mut events = Events::with_capacity(256);
    let mut next_token = FIRST_CONN;
    let mut listener = Some(listener);
    let mut drain_deadline: Option<Instant> = None;

    loop {
        if poll.poll(&mut events, Some(TICK)).is_err() {
            ppn_obs::obs_warn!("serve: selector poll failed, shutting the event loop down");
            break;
        }
        let now = clock::now();
        let stopping = stop.load(Ordering::SeqCst);

        // Tokens whose sockets reported readiness this round.
        let mut readable: Vec<usize> = Vec::new();
        let mut accept_ready = false;
        for ev in events.iter() {
            match ev.token() {
                LISTENER => accept_ready = true,
                WAKER => waker.drain(),
                Token(t) => {
                    if ev.is_readable() || ev.is_closed() {
                        readable.push(t);
                    }
                    // Writable readiness needs no marker: every connection
                    // is pumped below regardless.
                }
            }
        }

        if accept_ready && !stopping {
            if let Some(l) = listener.as_ref() {
                accept_all(l, &poll, &mut conns, &mut next_token, cfg);
            }
        }

        // Read + parse + route on connections that reported readiness.
        for t in readable {
            let Some(entry) = conns.get_mut(&t) else { continue };
            if entry.conn.fill().is_err() {
                deregister_conn(&poll, entry);
                conns.remove(&t);
                continue;
            }
            loop {
                match entry.conn.next_request() {
                    Ok(Some(req)) => {
                        route_request(&mut entry.conn, req, registry, queue, cfg, stopping, now)
                    }
                    Ok(None) => break,
                    Err(e) => {
                        metrics::requests().inc();
                        metrics::errors().inc();
                        metrics::latency_ms().observe(0.0);
                        let body = error_json(&format!("malformed request: {e}"));
                        entry.conn.push_ready(
                            format_response(400, "application/json", &[], &body, false),
                            false,
                        );
                        entry.conn.begin_shutdown();
                        break;
                    }
                }
            }
        }

        if stopping {
            // First observation of the stop flag: close the accept path,
            // stop parsing new requests everywhere, and set the hard
            // drain deadline (in-flight decisions get request_timeout).
            if let Some(l) = listener.take() {
                let _ = poll.deregister(&l);
                drop(l);
                for entry in conns.values_mut() {
                    entry.conn.begin_shutdown();
                }
                drain_deadline = Some(now + cfg.request_timeout + Duration::from_secs(1));
            }
        }

        // Deadlines, pumping, interest maintenance, reaping — full sweep
        // (connection counts are modest; the sweep is cache-friendly and
        // keeps the logic free of dirty-set bookkeeping).
        let mut dead: Vec<usize> = Vec::new();
        for (&t, entry) in conns.iter_mut() {
            entry.conn.check_read_deadline(now, cfg.read_timeout);
            if entry.conn.pump(now).is_err() {
                dead.push(t);
                continue;
            }
            if entry.conn.finished() || entry.conn.idle_expired(now, cfg.idle_timeout) {
                dead.push(t);
                continue;
            }
            let want = (entry.conn.wants_read(), entry.conn.wants_write());
            if want != entry.interest {
                let interest = build_interest(want);
                if poll.reregister(entry.conn.stream(), Token(t), interest).is_err() {
                    dead.push(t);
                    continue;
                }
                entry.interest = want;
            }
        }
        for t in dead {
            if let Some(entry) = conns.get(&t) {
                deregister_conn(&poll, entry);
            }
            conns.remove(&t);
        }
        metrics::connections().set(conns.len() as f64);

        if stopping && listener.is_none() {
            let expired = drain_deadline.is_some_and(|d| now >= d);
            if conns.is_empty() || expired {
                if expired && !conns.is_empty() {
                    ppn_obs::obs_warn!(
                        "serve: drain deadline hit with {} connection(s) still open — force-closing",
                        conns.len()
                    );
                }
                break;
            }
        }
    }
    // Dropping `conns` drops every reply receiver: in-queue jobs for these
    // connections read as disconnected and are skipped by the batcher.
}

/// Builds a selector interest from `(read, write)` wants. A connection
/// waiting on nothing still registers READABLE so peer hangups surface.
fn build_interest(want: (bool, bool)) -> Interest {
    match want {
        (_, false) => Interest::READABLE,
        (false, true) => Interest::WRITABLE,
        (true, true) => Interest::READABLE.add(Interest::WRITABLE),
    }
}

/// Accepts every pending connection, applying the `max_conns` admission
/// bound (refused peers get a best-effort `503` and an immediate close).
fn accept_all(
    listener: &TcpListener,
    poll: &Poll,
    conns: &mut BTreeMap<usize, ConnEntry>,
    next_token: &mut usize,
    cfg: &ServeConfig,
) {
    loop {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if conns.len() >= cfg.max_conns {
                    metrics::shed().inc();
                    metrics::errors().inc();
                    let body = error_json("connection limit reached");
                    let _ = stream.write_all(&format_response(
                        503,
                        "application/json",
                        &["Retry-After: 1"],
                        &body,
                        false,
                    ));
                    continue;
                }
                let Ok(conn) = Conn::new(stream) else { continue };
                let t = *next_token;
                *next_token += 1;
                if poll.register(conn.stream(), Token(t), Interest::READABLE).is_ok() {
                    conns.insert(t, ConnEntry { conn, interest: (true, false) });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    metrics::connections().set(conns.len() as f64);
}

fn deregister_conn(poll: &Poll, entry: &ConnEntry) {
    let _ = poll.deregister(entry.conn.stream());
}

/// Routes one parsed request: immediate endpoints are answered in place;
/// `/decide` enters the bounded queue (or is shed with `429`).
fn route_request(
    conn: &mut Conn,
    req: HttpRequest,
    registry: &ModelRegistry,
    queue: &RequestQueue,
    cfg: &ServeConfig,
    stopping: bool,
    now: Instant,
) {
    metrics::requests().inc();
    let keep = req.keep_alive;
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/decide") => {
            let parsed: DecideRequest = match serde_json::from_slice(&req.body) {
                Ok(p) => p,
                Err(e) => {
                    respond_error(conn, 400, &format!("bad request body: {e}"), &[], keep, now);
                    return;
                }
            };
            if stopping {
                respond_error(conn, 503, "server is shutting down", &[], keep, now);
                return;
            }
            // Root span for the request's whole server-side lifetime. Inert
            // unless picked by `PPN_TRACE_SAMPLE` every-Nth sampling; the
            // context rides through the queue so the batcher can attach the
            // queue-wait / assemble / forward stage spans to the same trace.
            let root = TraceSpan::root("serve.request");
            let trace = root.context();
            let (tx, rx) = reply_pair();
            let job = QueuedRequest { request: parsed, reply: tx, enqueued_at: now, trace };
            match queue.try_push(job) {
                Ok(()) => conn.push_waiting(rx, now, now + cfg.request_timeout, root, keep),
                Err(_refused) => {
                    metrics::shed().inc();
                    respond_error(
                        conn,
                        429,
                        "decision queue is full, retry shortly",
                        &["Retry-After: 1"],
                        keep,
                        now,
                    );
                }
            }
        }
        ("GET", "/health") => {
            let mut s = serde::Ser::new();
            s.begin_obj();
            s.key("status");
            s.write_str("ok");
            s.key("models");
            registry.names().serialize(&mut s);
            s.end_obj();
            respond_ok(conn, "application/json", &s.finish(), keep, now);
        }
        ("GET", "/models") => match serde_json::to_string(&registry.status()) {
            Ok(body) => respond_ok(conn, "application/json", &body, keep, now),
            Err(e) => respond_error(conn, 500, &format!("status failed: {e}"), &[], keep, now),
        },
        ("POST", "/rollback") => {
            let parsed: RollbackRequest = match serde_json::from_slice(&req.body) {
                Ok(p) => p,
                Err(e) => {
                    respond_error(conn, 400, &format!("bad request body: {e}"), &[], keep, now);
                    return;
                }
            };
            match registry.rollback(&parsed.model, parsed.version) {
                Ok(()) => {
                    let mut s = serde::Ser::new();
                    s.begin_obj();
                    s.key("model");
                    s.write_str(&parsed.model);
                    s.key("live_version");
                    parsed.version.serialize(&mut s);
                    s.end_obj();
                    respond_ok(conn, "application/json", &s.finish(), keep, now);
                }
                Err(e) => respond_error(conn, 404, &e.to_string(), &[], keep, now),
            }
        }
        ("GET", "/metrics") => {
            let body = ppn_obs::metrics_snapshot().to_prometheus();
            respond_ok(conn, ppn_obs::prom::CONTENT_TYPE, &body, keep, now);
        }
        ("GET", "/metrics.json") => match serde_json::to_string(&ppn_obs::metrics_snapshot()) {
            Ok(body) => respond_ok(conn, "application/json", &body, keep, now),
            Err(e) => respond_error(conn, 500, &format!("snapshot failed: {e}"), &[], keep, now),
        },
        (m, "/decide" | "/health" | "/models" | "/rollback" | "/metrics" | "/metrics.json") => {
            respond_error(
                conn,
                405,
                &format!("method {m} not allowed on {}", req.path),
                &[],
                keep,
                now,
            );
        }
        (_, p) => {
            respond_error(conn, 404, &format!("no route {p}"), &[], keep, now);
        }
    }
}

/// Queues an immediate 200 and records its (sub-tick) latency — every
/// outcome shows up in `serve.latency_ms`, not just decisions.
fn respond_ok(conn: &mut Conn, content_type: &str, body: &str, keep_alive: bool, started: Instant) {
    metrics::latency_ms()
        .observe(clock::now().saturating_duration_since(started).as_secs_f64() * 1e3);
    conn.push_ready(format_response(200, content_type, &[], body, keep_alive), keep_alive);
}

/// Queues an error response, counting it and recording its latency.
fn respond_error(
    conn: &mut Conn,
    status: u16,
    message: &str,
    extra_headers: &[&str],
    keep_alive: bool,
    started: Instant,
) {
    metrics::errors().inc();
    metrics::latency_ms()
        .observe(clock::now().saturating_duration_since(started).as_secs_f64() * 1e3);
    let body = error_json(message);
    conn.push_ready(
        format_response(status, "application/json", extra_headers, &body, keep_alive),
        keep_alive,
    );
}
