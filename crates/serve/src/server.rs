//! Listener, connection handling, the batcher thread, and graceful
//! shutdown. This is the **only** ppn-serve module sanctioned to spawn
//! threads (enforced by the ppn-check `no-thread` allowlist): the accept
//! loop, one handler thread per live connection, and the batcher. The
//! batched forward passes the batcher dispatches still run on the
//! `ppn_tensor::par` worker pool via the tensor kernels, so `PPN_THREADS`
//! keeps governing compute parallelism.

use crate::batcher::process_batch;
use crate::http::{read_request, write_response, write_response_typed, HttpRequest};
use crate::queue::{QueuedRequest, RequestQueue};
use crate::registry::ModelRegistry;
use crate::{error_json, metrics, DecideRequest};
use ppn_obs::TraceSpan;
use serde::Serialize;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Largest forward-pass batch the batcher will assemble.
    pub max_batch: usize,
    /// How long the batcher sleeps when the queue is empty.
    pub poll_interval: Duration,
    /// Extra wait after the first drained request of a batch, letting
    /// concurrent requests coalesce into the same forward pass.
    pub gather_window: Duration,
    /// How long a connection handler waits for its decision before
    /// answering 504.
    pub request_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 32,
            poll_interval: Duration::from_micros(100),
            gather_window: Duration::from_micros(300),
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// A running inference server.
///
/// [`Server::shutdown`] (or dropping the handle) stops accepting, lets
/// in-flight connections finish, drains the decision queue, and joins every
/// thread — no request that reached the queue is dropped.
pub struct Server {
    addr: SocketAddr,
    stop_accept: Arc<AtomicBool>,
    stop_batcher: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the accept loop and the batcher thread, and
    /// returns immediately.
    pub fn start(registry: ModelRegistry, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(registry);
        let queue = Arc::new(RequestQueue::new());
        let stop_accept = Arc::new(AtomicBool::new(false));
        let stop_batcher = Arc::new(AtomicBool::new(false));
        // Touch every instrument up front so /metrics and shutdown
        // snapshots expose them even before the first request.
        metrics::requests();
        metrics::errors();
        metrics::latency_ms();
        metrics::batch_size();
        metrics::queue_depth_peak();

        let batcher = {
            let registry = Arc::clone(&registry);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop_batcher);
            let cfg = cfg.clone();
            std::thread::spawn(move || loop {
                let mut jobs = queue.drain(cfg.max_batch);
                if jobs.is_empty() {
                    if stop.load(Ordering::SeqCst) {
                        if queue.is_empty() {
                            break;
                        }
                    } else {
                        std::thread::sleep(cfg.poll_interval);
                    }
                    continue;
                }
                // Micro-batching: give concurrent requests a beat to land,
                // then top the batch up before paying for a forward pass.
                if jobs.len() < cfg.max_batch && !cfg.gather_window.is_zero() {
                    std::thread::sleep(cfg.gather_window);
                    jobs.extend(queue.drain(cfg.max_batch - jobs.len()));
                }
                process_batch(&registry, jobs);
            })
        };

        let accept = {
            let registry = Arc::clone(&registry);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop_accept);
            let timeout = cfg.request_timeout;
            std::thread::spawn(move || {
                let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let registry = Arc::clone(&registry);
                    let queue = Arc::clone(&queue);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &registry, &queue, timeout);
                    }));
                    // Reap finished handlers so long-lived servers don't
                    // accumulate join handles.
                    handlers.retain(|h| !h.is_finished());
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
        };
        ppn_obs::obs_info!("serve: listening on {addr}");
        Ok(Server { addr, stop_accept, stop_batcher, accept: Some(accept), batcher: Some(batcher) })
    }

    /// The bound socket address (resolves the ephemeral port of `addr: …:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, finish in-flight connections,
    /// drain the decision queue, join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.stop_accept.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Every producer (handler thread) is joined: tell the batcher to
        // finish the remaining queue and exit.
        self.stop_batcher.store(true, Ordering::SeqCst);
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        ppn_obs::obs_info!("serve: {} shut down", self.addr);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || self.batcher.is_some() {
            self.stop();
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    registry: &ModelRegistry,
    queue: &RequestQueue,
    timeout: Duration,
) {
    let req = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            metrics::errors().inc();
            let _ =
                write_response(&mut stream, 400, &error_json(&format!("malformed request: {e}")));
            return;
        }
    };
    metrics::requests().inc();
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/decide") => handle_decide(stream, &req, queue, timeout),
        ("GET", "/health") => {
            let mut s = serde::Ser::new();
            s.begin_obj();
            s.key("status");
            s.write_str("ok");
            s.key("models");
            registry.names().serialize(&mut s);
            s.end_obj();
            let _ = write_response(&mut stream, 200, &s.finish());
        }
        ("GET", "/metrics") => {
            let body = ppn_obs::metrics_snapshot().to_prometheus();
            let _ = write_response_typed(&mut stream, 200, ppn_obs::prom::CONTENT_TYPE, &body);
        }
        ("GET", "/metrics.json") => match serde_json::to_string(&ppn_obs::metrics_snapshot()) {
            Ok(body) => {
                let _ = write_response(&mut stream, 200, &body);
            }
            Err(e) => {
                metrics::errors().inc();
                let _ =
                    write_response(&mut stream, 500, &error_json(&format!("snapshot failed: {e}")));
            }
        },
        (m, "/decide" | "/health" | "/metrics" | "/metrics.json") => {
            metrics::errors().inc();
            let _ = write_response(
                &mut stream,
                405,
                &error_json(&format!("method {m} not allowed on {}", req.path)),
            );
        }
        (_, p) => {
            metrics::errors().inc();
            let _ = write_response(&mut stream, 404, &error_json(&format!("no route {p}")));
        }
    }
}

fn handle_decide(
    mut stream: TcpStream,
    req: &HttpRequest,
    queue: &RequestQueue,
    timeout: Duration,
) {
    let parsed: DecideRequest = match serde_json::from_slice(&req.body) {
        Ok(p) => p,
        Err(e) => {
            metrics::errors().inc();
            let _ =
                write_response(&mut stream, 400, &error_json(&format!("bad request body: {e}")));
            return;
        }
    };
    // Root span for the request's whole server-side lifetime. Inert unless
    // this request is picked by `PPN_TRACE_SAMPLE` every-Nth sampling; the
    // context rides through the queue so the batcher can attach the
    // queue-wait / assemble / forward stage spans to the same trace.
    let root = TraceSpan::root("serve.request");
    let trace = root.context();
    let started = ppn_obs::clock::now();
    let (tx, rx) = mpsc::channel();
    queue.push(QueuedRequest { request: parsed, reply: tx, enqueued_at: started, trace });
    let outcome = rx.recv_timeout(timeout);
    let _respond = trace.child("serve.respond");
    match outcome {
        Ok(Ok(resp)) => {
            metrics::latency_ms().observe(started.elapsed().as_secs_f64() * 1e3);
            match serde_json::to_string(&resp) {
                Ok(body) => {
                    let _ = write_response(&mut stream, 200, &body);
                }
                Err(e) => {
                    metrics::errors().inc();
                    let _ = write_response(
                        &mut stream,
                        500,
                        &error_json(&format!("response serialization failed: {e}")),
                    );
                }
            }
        }
        // Routing/validation errors: the batcher already counted them.
        Ok(Err(e)) => {
            let _ = write_response(&mut stream, e.status(), &error_json(&e.message()));
        }
        Err(_) => {
            metrics::errors().inc();
            let _ = write_response(&mut stream, 504, &error_json("decision timed out"));
        }
    }
}
