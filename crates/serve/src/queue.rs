//! The admission-controlled decision queue plus the one-shot reply slots
//! that carry outcomes back to the event loop.
//!
//! The queue is **bounded** ([`RequestQueue::try_push`] refuses when full,
//! which the server answers with `429 Too Many Requests`) so overload
//! degrades by shedding instead of by unbounded memory growth and
//! ever-worsening latency. Depth is mirrored into the `serve.queue_depth`
//! level gauge on every mutation, its high-water mark into
//! `serve.queue_depth_peak`, and a condvar wakes the batcher the moment
//! work arrives — no sleep-poll on the hot path.

use crate::{DecideRequest, DecideResponse, ServeError};
use parking_lot::Mutex;
use ppn_obs::TraceContext;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, PoisonError};
use std::time::{Duration, Instant};

/// One decision outcome: the response, or why it was refused.
pub type Outcome = Result<DecideResponse, ServeError>;

/// Producer half of a one-shot reply slot; consumed by [`ReplySender::send`].
///
/// The batcher holds this; [`ReplySender::is_disconnected`] is true once the
/// matching [`ReplyReceiver`] was dropped (client gone, request timed out),
/// letting the batcher skip the job *before* paying for a forward pass.
pub struct ReplySender {
    slot: Arc<Mutex<Option<Outcome>>>,
}

/// Consumer half of a one-shot reply slot, owned by the connection state
/// machine; dropping it cancels the in-flight job.
pub struct ReplyReceiver {
    slot: Arc<Mutex<Option<Outcome>>>,
}

/// Creates a connected one-shot reply pair.
pub fn reply_pair() -> (ReplySender, ReplyReceiver) {
    let slot = Arc::new(Mutex::new(None));
    (ReplySender { slot: Arc::clone(&slot) }, ReplyReceiver { slot })
}

impl ReplySender {
    /// Delivers the outcome (consuming the sender). Delivery into a slot
    /// whose receiver is already gone is harmless.
    pub fn send(self, outcome: Outcome) {
        *self.slot.lock() = Some(outcome);
    }

    /// True when the receiving side no longer exists, i.e. nobody will ever
    /// read an outcome written here. Conservative under races: a receiver
    /// dropped concurrently may still read as connected for one batch.
    pub fn is_disconnected(&self) -> bool {
        Arc::strong_count(&self.slot) < 2
    }
}

impl ReplyReceiver {
    /// Takes the outcome if the batcher has delivered one.
    pub fn try_take(&self) -> Option<Outcome> {
        self.slot.lock().take()
    }
}

/// One decision request waiting for a batched forward pass.
pub struct QueuedRequest {
    /// The decoded request body.
    pub request: DecideRequest,
    /// Where the batcher sends the outcome.
    pub reply: ReplySender,
    /// When the request entered the queue.
    pub enqueued_at: Instant,
    /// Trace coordinates of the request's root span; the batcher attaches
    /// the `serve.queue_wait` / `serve.batch_assemble` / `serve.forward`
    /// stage spans here. Inert when the request is unsampled.
    pub trace: TraceContext,
}

/// Bounded lock-protected FIFO between the event loop and the batcher.
pub struct RequestQueue {
    jobs: Mutex<VecDeque<QueuedRequest>>,
    cap: usize,
    ready: Condvar,
    depth: ppn_obs::metrics::Gauge,
    depth_peak: ppn_obs::metrics::Gauge,
}

impl RequestQueue {
    /// Empty queue admitting at most `cap` waiting requests; registers the
    /// `serve.queue_depth` level gauge and the `serve.queue_depth_peak`
    /// high-water gauge.
    pub fn new(cap: usize) -> Self {
        RequestQueue {
            jobs: Mutex::new(VecDeque::new()),
            cap,
            ready: Condvar::new(),
            depth: crate::metrics::queue_depth(),
            depth_peak: crate::metrics::queue_depth_peak(),
        }
    }

    /// Appends a request and wakes the batcher, or returns the request
    /// untouched when the queue is at capacity (the caller sheds it).
    pub fn try_push(&self, job: QueuedRequest) -> Result<(), QueuedRequest> {
        let mut q = self.jobs.lock();
        if q.len() >= self.cap {
            return Err(job);
        }
        q.push_back(job);
        self.depth.set(q.len() as f64);
        self.depth_peak.set(q.len() as f64);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Removes and returns up to `max` requests from the front.
    pub fn drain(&self, max: usize) -> Vec<QueuedRequest> {
        let mut q = self.jobs.lock();
        let n = max.min(q.len());
        let out: Vec<QueuedRequest> = q.drain(..n).collect();
        self.depth.set(q.len() as f64);
        out
    }

    /// Blocks until the queue is (probably) non-empty or `timeout` elapses;
    /// returns whether work was visible at wakeup. The batcher uses the
    /// timeout slice to re-check its stop flag, so spurious wakes are fine.
    pub fn wait_nonempty(&self, timeout: Duration) -> bool {
        let q = self.jobs.lock();
        if !q.is_empty() {
            return true;
        }
        let (q, _timed_out) =
            self.ready.wait_timeout(q, timeout).unwrap_or_else(PoisonError::into_inner);
        !q.is_empty()
    }

    /// Wakes every waiter regardless of queue state (used at shutdown so
    /// the batcher re-checks its stop flag immediately).
    pub fn notify_all(&self) {
        self.ready.notify_all();
    }

    /// Maximum number of waiting requests this queue admits.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.jobs.lock().len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_request() -> DecideRequest {
        DecideRequest { model: "m".to_string(), window: vec![1.0], prev_action: vec![1.0] }
    }

    fn dummy_job() -> (QueuedRequest, ReplyReceiver) {
        let (tx, rx) = reply_pair();
        let job = QueuedRequest {
            request: dummy_request(),
            reply: tx,
            enqueued_at: ppn_obs::clock::now(),
            trace: TraceContext::inert(),
        };
        (job, rx)
    }

    #[test]
    fn try_push_refuses_beyond_capacity() {
        let q = RequestQueue::new(2);
        let mut rxs = Vec::new();
        for _ in 0..2 {
            let (job, rx) = dummy_job();
            assert!(q.try_push(job).is_ok());
            rxs.push(rx);
        }
        let (job, _rx) = dummy_job();
        let back = q.try_push(job).expect_err("third push must be refused at cap 2");
        assert_eq!(back.request.model, "m");
        assert_eq!(q.len(), 2);
        // Draining frees capacity again.
        assert_eq!(q.drain(1).len(), 1);
        let (job, _rx2) = dummy_job();
        assert!(q.try_push(job).is_ok());
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let q = RequestQueue::new(0);
        let (job, _rx) = dummy_job();
        assert!(q.try_push(job).is_err());
        assert!(q.is_empty());
    }

    #[test]
    fn reply_slot_roundtrip_and_disconnect() {
        let (tx, rx) = reply_pair();
        assert!(!tx.is_disconnected());
        assert!(rx.try_take().is_none());
        tx.send(Err(ServeError::ShuttingDown));
        assert!(matches!(rx.try_take(), Some(Err(ServeError::ShuttingDown))));
        assert!(rx.try_take().is_none(), "one-shot: a second take sees nothing");

        let (tx, rx) = reply_pair();
        drop(rx);
        assert!(tx.is_disconnected(), "dropping the receiver must mark the sender disconnected");
    }

    #[test]
    fn wait_nonempty_sees_pushed_work() {
        let q = RequestQueue::new(4);
        assert!(!q.wait_nonempty(Duration::from_millis(1)), "empty queue times out");
        let (job, _rx) = dummy_job();
        q.try_push(job).ok();
        assert!(q.wait_nonempty(Duration::from_millis(1)));
    }
}
