//! The decision queue: connection handlers push parsed requests with a
//! reply channel; the batcher drains up to `max_batch` of them at a time.
//! Depth is mirrored into the `serve.queue_depth` level gauge on every
//! mutation, and its high-water mark into `serve.queue_depth_peak`.

use crate::{DecideRequest, DecideResponse, ServeError};
use parking_lot::Mutex;
use ppn_obs::TraceContext;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::time::Instant;

/// Reply channel carrying one decision outcome back to its handler.
pub type ReplySender = mpsc::Sender<Result<DecideResponse, ServeError>>;

/// One decision request waiting for a batched forward pass.
pub struct QueuedRequest {
    /// The decoded request body.
    pub request: DecideRequest,
    /// Where the batcher sends the outcome.
    pub reply: ReplySender,
    /// When the request entered the queue.
    pub enqueued_at: Instant,
    /// Trace coordinates of the request's root span; the batcher attaches
    /// the `serve.queue_wait` / `serve.batch_assemble` / `serve.forward`
    /// stage spans here. Inert when the request is unsampled.
    pub trace: TraceContext,
}

/// Lock-protected FIFO between the connection handlers and the batcher.
pub struct RequestQueue {
    jobs: Mutex<VecDeque<QueuedRequest>>,
    depth: ppn_obs::metrics::Gauge,
    depth_peak: ppn_obs::metrics::Gauge,
}

impl RequestQueue {
    /// Empty queue; registers the `serve.queue_depth` level gauge and the
    /// `serve.queue_depth_peak` high-water gauge.
    pub fn new() -> Self {
        RequestQueue {
            jobs: Mutex::new(VecDeque::new()),
            depth: crate::metrics::queue_depth(),
            depth_peak: crate::metrics::queue_depth_peak(),
        }
    }

    /// Appends a request.
    pub fn push(&self, job: QueuedRequest) {
        let mut q = self.jobs.lock();
        q.push_back(job);
        self.depth.set(q.len() as f64);
        self.depth_peak.set(q.len() as f64);
    }

    /// Removes and returns up to `max` requests from the front.
    pub fn drain(&self, max: usize) -> Vec<QueuedRequest> {
        let mut q = self.jobs.lock();
        let n = max.min(q.len());
        let out: Vec<QueuedRequest> = q.drain(..n).collect();
        self.depth.set(q.len() as f64);
        out
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.jobs.lock().len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for RequestQueue {
    fn default() -> Self {
        RequestQueue::new()
    }
}
